#include "metaquery/knn.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "storage/record_builder.h"

namespace cqms::metaquery {

std::vector<Neighbor> KnnSearch(const storage::QueryStore& store,
                                const std::string& viewer,
                                const storage::QueryRecord& probe, size_t k,
                                const SimilarityWeights& weights,
                                const RankingOptions& ranking) {
  // Candidate generation.
  std::set<storage::QueryId> candidates;
  if (!probe.parse_failed() && !probe.components.tables.empty()) {
    for (const std::string& t : probe.components.tables) {
      for (storage::QueryId id : store.QueriesUsingTable(t)) {
        candidates.insert(id);
      }
    }
  } else {
    for (const auto& r : store.records()) candidates.insert(r.id);
  }

  Micros max_ts = 1;
  for (const auto& r : store.records()) max_ts = std::max(max_ts, r.timestamp);

  std::vector<Neighbor> scored;
  scored.reserve(candidates.size());
  for (storage::QueryId id : candidates) {
    if (!store.Visible(viewer, id)) continue;
    const storage::QueryRecord* r = store.Get(id);
    if (r == nullptr) continue;
    if (ranking.exclude_flagged &&
        (r->HasFlag(storage::kFlagSchemaBroken) ||
         r->HasFlag(storage::kFlagObsolete))) {
      continue;
    }
    double sim = CombinedSimilarity(probe, *r, weights);
    if (sim < ranking.min_similarity) continue;

    double popularity =
        std::log1p(static_cast<double>(store.PopularityOf(r->fingerprint))) /
        std::log1p(static_cast<double>(store.size()) + 1.0);
    double recency = max_ts > 0 ? static_cast<double>(r->timestamp) /
                                      static_cast<double>(max_ts)
                                : 0;
    double score = ranking.w_similarity * sim +
                   ranking.w_popularity * popularity +
                   ranking.w_quality * r->quality + ranking.w_recency * recency;
    scored.push_back({id, sim, score});
  }

  size_t keep = std::min(k, scored.size());
  std::partial_sort(scored.begin(), scored.begin() + keep, scored.end(),
                    [](const Neighbor& a, const Neighbor& b) {
                      if (a.score != b.score) return a.score > b.score;
                      return a.id < b.id;
                    });
  scored.resize(keep);
  return scored;
}

Result<std::vector<Neighbor>> KnnSearchText(const storage::QueryStore& store,
                                            const std::string& viewer,
                                            const std::string& sql_text, size_t k,
                                            const SimilarityWeights& weights,
                                            const RankingOptions& ranking) {
  storage::QueryRecord probe = storage::BuildRecordFromText(sql_text, viewer, 0);
  if (probe.parse_failed()) {
    return Status::ParseError("probe query does not parse: " + probe.stats.error);
  }
  return KnnSearch(store, viewer, probe, k, weights, ranking);
}

}  // namespace cqms::metaquery
