#ifndef CQMS_METAQUERY_TEXT_SEARCH_H_
#define CQMS_METAQUERY_TEXT_SEARCH_H_

#include <string>
#include <vector>

#include "storage/query_store.h"

namespace cqms::metaquery {

/// Keyword search over the query log (§2.2: "at minimum, it should
/// provide substring matching and keyword search"). Words are matched via
/// the store's inverted index; with `match_all` every word must appear.
/// Results are restricted to queries visible to `viewer`, in log order.
std::vector<storage::QueryId> KeywordSearch(const storage::QueryStore& store,
                                            const std::string& viewer,
                                            const std::string& words,
                                            bool match_all = true);

/// Case-insensitive substring scan over raw query text.
std::vector<storage::QueryId> SubstringSearch(const storage::QueryStore& store,
                                              const std::string& viewer,
                                              const std::string& needle);

}  // namespace cqms::metaquery

#endif  // CQMS_METAQUERY_TEXT_SEARCH_H_
