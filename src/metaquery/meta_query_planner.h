#ifndef CQMS_METAQUERY_META_QUERY_PLANNER_H_
#define CQMS_METAQUERY_META_QUERY_PLANNER_H_

#include <string>

#include "metaquery/meta_query_request.h"
#include "storage/query_store.h"

namespace cqms::metaquery {

/// Executes a MetaQueryRequest against the store: the one pipeline every
/// meta-query class now runs through.
///
/// Candidate generation picks the cheapest exact generator by estimated
/// selectivity:
///
///   1. If any predicate is backed by a posting list (keyword tokens,
///      feature/structure tables, attributes, user), all such lists are
///      intersected smallest-first — the smallest list bounds the
///      candidate count, and intersections keep conjunction semantics
///      exact. An empty required list short-circuits to zero results.
///   2. Otherwise, a similarity probe generates candidates exactly like
///      legacy kNN (shared KnnCandidateIds): LSH band buckets on large
///      logs (approximate by contract), else the probe's table-posting
///      union. The LSH generator is deliberately *not* used when posting
///      lists exist: it can miss true conjunction matches, and an exact
///      generator of bounded size is already available.
///   3. Full scan only as last resort (substring / data / structure
///      predicates with no required tables).
///
/// Candidates then stream through one filter + scoring loop that reads
/// the store's ScoringColumns (contiguous hot fields, packed signature
/// spans, slot-indexed popularity) instead of the record deque; the
/// record struct is touched only for the predicates that need it
/// (feature / structure / data). Visibility is resolved exactly once per
/// candidate through the caller's VisibilityCache.
class MetaQueryPlanner {
 public:
  /// Plans against the live store (single-threaded path). `store` must
  /// outlive the planner.
  explicit MetaQueryPlanner(const storage::QueryStore* store)
      : view_(*store) {}

  /// Plans against a read facade — the live store or a pinned published
  /// view (concurrent path). Whatever backs the facade must outlive the
  /// planner; on the view path that means the caller holds the
  /// PinnedView for the planner's whole execution.
  explicit MetaQueryPlanner(storage::StoreView view) : view_(view) {}

  /// Runs `request` for `visibility`'s viewer. The cache must be backed
  /// by the same store / view as the planner; it memoizes ACL decisions
  /// across calls (and, on the live path, self-invalidates on ACL
  /// mutation).
  MetaQueryResponse Execute(const MetaQueryRequest& request,
                            storage::VisibilityCache* visibility) const;

  /// Convenience overload with a call-local visibility cache.
  MetaQueryResponse Execute(const std::string& viewer,
                            const MetaQueryRequest& request) const;

 private:
  storage::StoreView view_;
};

}  // namespace cqms::metaquery

#endif  // CQMS_METAQUERY_META_QUERY_PLANNER_H_
