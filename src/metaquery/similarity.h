#ifndef CQMS_METAQUERY_SIMILARITY_H_
#define CQMS_METAQUERY_SIMILARITY_H_

#include "storage/query_record.h"
#include "storage/scoring_columns.h"

namespace cqms::metaquery {

/// Mixing weights for the composite similarity. The paper (§2.3) notes
/// "query similarity could be defined in terms of query parse trees,
/// features, or output data" and asks how to combine them; this struct is
/// that combination knob. Weights are renormalized over the measures that
/// are actually computable for a pair (e.g. output similarity needs both
/// queries to carry output summaries).
struct SimilarityWeights {
  double feature = 0.6;  ///< Syntactic feature overlap.
  double text = 0.2;     ///< Token-level text overlap.
  double output = 0.2;   ///< Output-sample overlap (semantic, black-box).
};

/// Jaccard over two sorted, deduplicated runs given as pointer + length —
/// the kernel SortedJaccard and the columnar scoring path share, so both
/// compile to the identical instruction sequence and produce bit-identical
/// scores regardless of where the runs live (signature vectors or the
/// ScoringColumns arena).
template <typename T>
double SpanJaccard(const T* a, size_t na, const T* b, size_t nb) {
  if (na == 0 && nb == 0) return 1.0;
  size_t i = 0, j = 0, inter = 0;
  while (i < na && j < nb) {
    if (a[i] == b[j]) {
      ++inter;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  size_t uni = na + nb - inter;
  return uni == 0 ? 1.0 : static_cast<double>(inter) / static_cast<double>(uni);
}

/// Jaccard over two sorted, deduplicated vectors via a single linear
/// merge — the allocation-free kernel every signature measure shares.
/// Both-empty pairs score 1.0 (matching the string-set reference path).
template <typename T>
double SortedJaccard(const std::vector<T>& a, const std::vector<T>& b) {
  return SpanJaccard(a.data(), a.size(), b.data(), b.size());
}

/// A borrowed, layout-agnostic view of one record's similarity features:
/// pointers into either a SimilaritySignature's vectors or the scoring
/// columns' arenas. All similarity measures are defined over views, so the
/// record-based and columnar paths are literally the same code.
struct SignatureView {
  const Symbol* tables = nullptr;
  size_t n_tables = 0;
  const Symbol* skeletons = nullptr;
  size_t n_skeletons = 0;
  const Symbol* attributes = nullptr;
  size_t n_attributes = 0;
  const Symbol* projections = nullptr;
  size_t n_projections = 0;
  const Symbol* tokens = nullptr;
  size_t n_tokens = 0;
  const uint64_t* output_rows = nullptr;
  size_t n_output = 0;
  bool output_empty_computed = false;
  /// Feature measures apply only when the query parsed.
  bool parsed = false;
};

/// View over a record's precomputed signature. The record must outlive
/// the view (pointers borrow its vectors).
SignatureView ViewOfSignature(const storage::QueryRecord& record);

/// View of one record read from the scoring columns — same shape,
/// different backing memory (the shared arenas), identical scores. Only
/// meaningful while cols.signature_valid(id); callers fall back to the
/// record path otherwise. Invalidated by arena compaction and by any
/// mutation of the record, like every other span the columns hand out.
SignatureView ViewOfColumns(const storage::ScoringColumns& cols,
                            storage::QueryId id);

/// Feature overlap (tables, predicate skeletons, attributes, projections).
double FeatureSimilarity(const SignatureView& a, const SignatureView& b);

/// Token overlap.
double TextSimilarity(const SignatureView& a, const SignatureView& b);

/// Output-sample overlap on sorted row hashes; -1 when unavailable.
double OutputSimilarity(const SignatureView& a, const SignatureView& b);

/// Weighted combination over views — the one scoring kernel behind
/// CombinedSimilarity and the meta-query planner's columnar loop.
double CombinedSimilarity(const SignatureView& a, const SignatureView& b,
                          const SimilarityWeights& weights);

// --- signature fast path ---------------------------------------------------
// These overloads operate on the precomputed, interned SimilaritySignature
// and perform no allocations; they are the kNN / clustering inner loop.
// Scores are identical to the string-based reference overloads below
// (asserted to 1e-12 by similarity_signature_test).

/// Feature overlap on interned sorted vectors.
double FeatureSimilarity(const storage::SimilaritySignature& a,
                         const storage::SimilaritySignature& b);

/// Token overlap on interned sorted vectors.
double TextSimilarity(const storage::SimilaritySignature& a,
                      const storage::SimilaritySignature& b);

/// Output-sample overlap on sorted row hashes; -1 when unavailable.
double OutputSimilarity(const storage::SimilaritySignature& a,
                        const storage::SimilaritySignature& b);

// --- string-based reference path -------------------------------------------

/// Jaccard-style overlap of syntactic features: tables, predicate
/// skeletons, referenced attributes and projections. In [0, 1].
double FeatureSimilarity(const sql::QueryComponents& a, const sql::QueryComponents& b);

/// Token-set Jaccard over the query texts (cheap proxy for string
/// similarity; robust to formatting). In [0, 1].
double TextSimilarity(const storage::QueryRecord& a, const storage::QueryRecord& b);

/// Overlap of sampled output rows — the paper's "comparing queries as
/// black-boxes" (§4.1). Jaccard over row hashes of the stored samples.
/// Returns -1 when either side has no usable summary.
double OutputSimilarity(const storage::OutputSummary& a, const storage::OutputSummary& b);

/// Weighted combination; skips (and renormalizes away) measures that are
/// unavailable for this pair. In [0, 1]. Dispatches to the signature fast
/// path when both records carry a valid signature (always true for logged
/// and probe records), else falls back to CombinedSimilarityReference.
double CombinedSimilarity(const storage::QueryRecord& a, const storage::QueryRecord& b,
                          const SimilarityWeights& weights = {});

/// The string-based combination, kept as the ground-truth reference for
/// equivalence tests and for records without signatures.
double CombinedSimilarityReference(const storage::QueryRecord& a,
                                   const storage::QueryRecord& b,
                                   const SimilarityWeights& weights = {});

/// Structural distance in "number of edits" between two queries,
/// normalized to [0, 1] by the total component count. 0 = identical
/// structure. Used by the sessionizer.
double NormalizedEditDistance(const sql::QueryComponents& a,
                              const sql::QueryComponents& b);

}  // namespace cqms::metaquery

#endif  // CQMS_METAQUERY_SIMILARITY_H_
