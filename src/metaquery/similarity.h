#ifndef CQMS_METAQUERY_SIMILARITY_H_
#define CQMS_METAQUERY_SIMILARITY_H_

#include "storage/query_record.h"

namespace cqms::metaquery {

/// Mixing weights for the composite similarity. The paper (§2.3) notes
/// "query similarity could be defined in terms of query parse trees,
/// features, or output data" and asks how to combine them; this struct is
/// that combination knob. Weights are renormalized over the measures that
/// are actually computable for a pair (e.g. output similarity needs both
/// queries to carry output summaries).
struct SimilarityWeights {
  double feature = 0.6;  ///< Syntactic feature overlap.
  double text = 0.2;     ///< Token-level text overlap.
  double output = 0.2;   ///< Output-sample overlap (semantic, black-box).
};

/// Jaccard-style overlap of syntactic features: tables, predicate
/// skeletons, referenced attributes and projections. In [0, 1].
double FeatureSimilarity(const sql::QueryComponents& a, const sql::QueryComponents& b);

/// Token-set Jaccard over the query texts (cheap proxy for string
/// similarity; robust to formatting). In [0, 1].
double TextSimilarity(const storage::QueryRecord& a, const storage::QueryRecord& b);

/// Overlap of sampled output rows — the paper's "comparing queries as
/// black-boxes" (§4.1). Jaccard over row hashes of the stored samples.
/// Returns -1 when either side has no usable summary.
double OutputSimilarity(const storage::OutputSummary& a, const storage::OutputSummary& b);

/// Weighted combination; skips (and renormalizes away) measures that are
/// unavailable for this pair. In [0, 1].
double CombinedSimilarity(const storage::QueryRecord& a, const storage::QueryRecord& b,
                          const SimilarityWeights& weights = {});

/// Structural distance in "number of edits" between two queries,
/// normalized to [0, 1] by the total component count. 0 = identical
/// structure. Used by the sessionizer.
double NormalizedEditDistance(const sql::QueryComponents& a,
                              const sql::QueryComponents& b);

}  // namespace cqms::metaquery

#endif  // CQMS_METAQUERY_SIMILARITY_H_
