#ifndef CQMS_METAQUERY_SIMILARITY_H_
#define CQMS_METAQUERY_SIMILARITY_H_

#include "storage/query_record.h"

namespace cqms::metaquery {

/// Mixing weights for the composite similarity. The paper (§2.3) notes
/// "query similarity could be defined in terms of query parse trees,
/// features, or output data" and asks how to combine them; this struct is
/// that combination knob. Weights are renormalized over the measures that
/// are actually computable for a pair (e.g. output similarity needs both
/// queries to carry output summaries).
struct SimilarityWeights {
  double feature = 0.6;  ///< Syntactic feature overlap.
  double text = 0.2;     ///< Token-level text overlap.
  double output = 0.2;   ///< Output-sample overlap (semantic, black-box).
};

/// Jaccard over two sorted, deduplicated vectors via a single linear
/// merge — the allocation-free kernel every signature measure shares.
/// Both-empty pairs score 1.0 (matching the string-set reference path).
template <typename T>
double SortedJaccard(const std::vector<T>& a, const std::vector<T>& b) {
  if (a.empty() && b.empty()) return 1.0;
  size_t i = 0, j = 0, inter = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++inter;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  size_t uni = a.size() + b.size() - inter;
  return uni == 0 ? 1.0 : static_cast<double>(inter) / static_cast<double>(uni);
}

// --- signature fast path ---------------------------------------------------
// These overloads operate on the precomputed, interned SimilaritySignature
// and perform no allocations; they are the kNN / clustering inner loop.
// Scores are identical to the string-based reference overloads below
// (asserted to 1e-12 by similarity_signature_test).

/// Feature overlap on interned sorted vectors.
double FeatureSimilarity(const storage::SimilaritySignature& a,
                         const storage::SimilaritySignature& b);

/// Token overlap on interned sorted vectors.
double TextSimilarity(const storage::SimilaritySignature& a,
                      const storage::SimilaritySignature& b);

/// Output-sample overlap on sorted row hashes; -1 when unavailable.
double OutputSimilarity(const storage::SimilaritySignature& a,
                        const storage::SimilaritySignature& b);

// --- string-based reference path -------------------------------------------

/// Jaccard-style overlap of syntactic features: tables, predicate
/// skeletons, referenced attributes and projections. In [0, 1].
double FeatureSimilarity(const sql::QueryComponents& a, const sql::QueryComponents& b);

/// Token-set Jaccard over the query texts (cheap proxy for string
/// similarity; robust to formatting). In [0, 1].
double TextSimilarity(const storage::QueryRecord& a, const storage::QueryRecord& b);

/// Overlap of sampled output rows — the paper's "comparing queries as
/// black-boxes" (§4.1). Jaccard over row hashes of the stored samples.
/// Returns -1 when either side has no usable summary.
double OutputSimilarity(const storage::OutputSummary& a, const storage::OutputSummary& b);

/// Weighted combination; skips (and renormalizes away) measures that are
/// unavailable for this pair. In [0, 1]. Dispatches to the signature fast
/// path when both records carry a valid signature (always true for logged
/// and probe records), else falls back to CombinedSimilarityReference.
double CombinedSimilarity(const storage::QueryRecord& a, const storage::QueryRecord& b,
                          const SimilarityWeights& weights = {});

/// The string-based combination, kept as the ground-truth reference for
/// equivalence tests and for records without signatures.
double CombinedSimilarityReference(const storage::QueryRecord& a,
                                   const storage::QueryRecord& b,
                                   const SimilarityWeights& weights = {});

/// Structural distance in "number of edits" between two queries,
/// normalized to [0, 1] by the total component count. 0 = identical
/// structure. Used by the sessionizer.
double NormalizedEditDistance(const sql::QueryComponents& a,
                              const sql::QueryComponents& b);

}  // namespace cqms::metaquery

#endif  // CQMS_METAQUERY_SIMILARITY_H_
