#include "metaquery/text_search.h"

#include <algorithm>

#include "common/string_util.h"

namespace cqms::metaquery {

std::vector<storage::QueryId> KeywordSearch(const storage::QueryStore& store,
                                            const std::string& viewer,
                                            const std::string& words,
                                            bool match_all) {
  std::vector<std::string> tokens = ExtractWords(words);
  std::vector<storage::QueryId> out;
  if (tokens.empty()) return out;

  if (match_all) {
    // Intersect posting lists, smallest first.
    std::vector<const std::vector<storage::QueryId>*> lists;
    lists.reserve(tokens.size());
    for (const std::string& t : tokens) {
      lists.push_back(&store.QueriesWithKeyword(t));
      if (lists.back()->empty()) return out;
    }
    std::sort(lists.begin(), lists.end(),
              [](const auto* a, const auto* b) { return a->size() < b->size(); });
    std::vector<storage::QueryId> current = *lists[0];
    for (size_t i = 1; i < lists.size() && !current.empty(); ++i) {
      std::vector<storage::QueryId> next;
      // Posting lists are in ascending id order by construction.
      std::set_intersection(current.begin(), current.end(), lists[i]->begin(),
                            lists[i]->end(), std::back_inserter(next));
      current = std::move(next);
    }
    for (storage::QueryId id : current) {
      if (store.Visible(viewer, id)) out.push_back(id);
    }
    return out;
  }

  // match-any: union.
  std::vector<storage::QueryId> merged;
  for (const std::string& t : tokens) {
    const auto& ids = store.QueriesWithKeyword(t);
    merged.insert(merged.end(), ids.begin(), ids.end());
  }
  std::sort(merged.begin(), merged.end());
  merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
  for (storage::QueryId id : merged) {
    if (store.Visible(viewer, id)) out.push_back(id);
  }
  return out;
}

std::vector<storage::QueryId> SubstringSearch(const storage::QueryStore& store,
                                              const std::string& viewer,
                                              const std::string& needle) {
  std::vector<storage::QueryId> out;
  if (needle.empty()) return out;
  // Lower-case the needle once and scan each record's lowered text,
  // memoized in the scoring columns at append time — the per-record
  // case-folding (and its allocations) is off the scan entirely.
  const std::string lowered = ToLower(needle);
  const storage::ScoringColumns& cols = store.scoring();
  for (const storage::QueryRecord& r : store.records()) {
    if (!store.Visible(viewer, r.id)) continue;
    if (cols.lowered_text(r.id).find(lowered) != std::string_view::npos) {
      out.push_back(r.id);
    }
  }
  return out;
}

}  // namespace cqms::metaquery
