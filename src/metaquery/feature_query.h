#ifndef CQMS_METAQUERY_FEATURE_QUERY_H_
#define CQMS_METAQUERY_FEATURE_QUERY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "sql/ast.h"
#include "storage/query_store.h"

namespace cqms::metaquery {

/// Programmatic query-by-feature (§2.2): conjunctive conditions over the
/// extracted feature relations, evaluated through the store's indexes.
/// This is the native fast path; the equivalent SQL meta-query path runs
/// against `QueryStore::feature_db()` (see GenerateCorrelationMetaQuery).
class FeatureQuery {
 public:
  /// Query must read from `table` (any nesting level).
  FeatureQuery& UsesTable(std::string table);

  /// Query must reference relation.attribute.
  FeatureQuery& UsesAttribute(std::string relation, std::string attribute);

  /// Query must contain a selection predicate on relation.attribute,
  /// optionally with a specific operator.
  FeatureQuery& HasPredicateOn(std::string relation, std::string attribute,
                               std::string op = "");

  /// Restrict to one author.
  FeatureQuery& ByUser(std::string user);

  /// Runtime-feature conditions (the paper's "desired properties, e.g.
  /// small result set, fast execution time").
  FeatureQuery& MaxExecutionMicros(int64_t micros);
  FeatureQuery& MaxResultRows(uint64_t rows);
  FeatureQuery& MinResultRows(uint64_t rows);
  FeatureQuery& SucceededOnly();

  /// Evaluates against the store, returning ids visible to `viewer` in
  /// log order. Table/attribute conditions drive index lookups; the rest
  /// filter.
  std::vector<storage::QueryId> Evaluate(const storage::QueryStore& store,
                                         const std::string& viewer) const;

  /// Exact per-record check of every condition except visibility —
  /// verified against the record's *current* features, never the index
  /// (the meta-query planner and Evaluate share this filter). True for a
  /// record this query accepts.
  bool MatchesRecord(const storage::QueryRecord& record) const;

  struct PredicateCondition {
    std::string relation;
    std::string attribute;
    std::string op;  // empty = any
  };

  // Indexed conditions, exposed so the meta-query planner can fold this
  // query's posting lists into its candidate intersection. All strings
  // are stored lower-cased.
  const std::vector<std::string>& tables() const { return tables_; }
  const std::vector<std::pair<std::string, std::string>>& attributes() const {
    return attributes_;
  }
  const std::vector<PredicateCondition>& predicates() const { return predicates_; }
  const std::optional<std::string>& user() const { return user_; }

  /// True when every condition is exactly backed by a posting list
  /// (tables, attributes, user) — a candidate produced by intersecting
  /// those lists needs no per-record recheck, so the planner can keep
  /// its scoring loop off the record log. Predicate conditions need the
  /// record (the index only knows the attribute was referenced) and the
  /// runtime-feature filters are not indexed at all.
  bool IndexCovered() const {
    return predicates_.empty() && !max_execution_micros_.has_value() &&
           !max_result_rows_.has_value() && !min_result_rows_.has_value() &&
           !succeeded_only_;
  }

 private:
  std::vector<std::string> tables_;
  std::vector<std::pair<std::string, std::string>> attributes_;
  std::vector<PredicateCondition> predicates_;
  std::optional<std::string> user_;
  std::optional<int64_t> max_execution_micros_;
  std::optional<uint64_t> max_result_rows_;
  std::optional<uint64_t> min_result_rows_;
  bool succeeded_only_ = false;
};

/// Generates the Figure-1 meta-query from a *partially written* query:
/// given `SELECT ... FROM WaterSalinity, WaterTemp ...`, produces
///
///   SELECT Q.qid, Q.qtext FROM Queries Q, DataSources D1, DataSources D2
///   WHERE Q.qid = D1.qid AND Q.qid = D2.qid
///     AND D1.relname = 'watersalinity' AND D2.relname = 'watertemp'
///
/// plus one Attributes join per referenced attribute — executable SQL
/// against `QueryStore::feature_db()`. Errors if the partial query
/// references no tables.
Result<std::string> GenerateMetaQueryFromPartial(const sql::SelectStatement& partial);

}  // namespace cqms::metaquery

#endif  // CQMS_METAQUERY_FEATURE_QUERY_H_
