#ifndef CQMS_METAQUERY_META_QUERY_REQUEST_H_
#define CQMS_METAQUERY_META_QUERY_REQUEST_H_

#include <optional>
#include <string>
#include <vector>

#include "metaquery/feature_query.h"
#include "metaquery/knn.h"
#include "metaquery/parse_tree_query.h"
#include "metaquery/query_by_data.h"
#include "metaquery/similarity.h"
#include "obs/trace.h"
#include "storage/query_record.h"

namespace cqms::metaquery {

/// Keyword-search predicate: every (or any) extracted word must appear in
/// the logged query's text tokens. Matches KeywordSearch semantics: a
/// request whose `words` yields no extractable tokens matches nothing.
struct KeywordPredicate {
  std::string words;
  bool match_all = true;
};

/// Query-by-data predicate (see QueryByData): the logged query's output
/// must satisfy every labeled example.
struct DataPredicate {
  std::vector<DataExample> examples;
  QueryByDataOptions options;
};

/// Similarity-to-probe predicate. `probe` is borrowed and must outlive
/// the request's execution (it is typically a stack-local built by
/// BuildRecordFromText in kTransient mode). Candidates below
/// RankingOptions::min_similarity are dropped.
struct SimilarityPredicate {
  const storage::QueryRecord* probe = nullptr;
  SimilarityWeights weights;
  /// Candidate-generation knobs, honored only when this predicate is the
  /// sole indexable one (otherwise exact posting intersections win).
  CandidateOptions candidates;
};

/// How the result list is ordered.
enum class ResultOrder {
  /// Ranked by the composite score (similarity, popularity, quality,
  /// recency — see RankingOptions), ties broken by ascending id.
  kScore,
  /// Ascending query id (log order), no scoring — what the class 1-3
  /// legacy entry points return.
  kLogOrder,
};

/// One meta-query over the log: a *conjunction* of composable predicates
/// plus one ranking policy — the paper's §2.3 ask ("ranking functions
/// that combine similarity measures with other desired properties") as
/// an API. Every predicate is optional; an empty request matches every
/// visible query. The legacy MetaQueryExecutor entry points are now
/// one-predicate instances of this type.
///
/// Example — "queries touching `lineage` with skeleton X, similar to
/// this probe, ranked by popularity":
///
///   MetaQueryRequest req;
///   req.feature.emplace();
///   req.feature->UsesTable("lineage");
///   req.structure.emplace();
///   req.structure->required_predicate_skeletons = {"lineage.run < ?"};
///   req.similarity = SimilarityPredicate{&probe, {}, {}};
///   req.ranking.w_popularity = 0.5;
///   req.limit = 10;
struct MetaQueryRequest {
  std::optional<KeywordPredicate> keyword;
  /// Case-insensitive substring of the raw query text. An empty needle
  /// matches nothing (legacy SubstringSearch semantics).
  std::optional<std::string> substring;
  std::optional<FeatureQuery> feature;
  std::optional<StructuralPattern> structure;
  std::optional<DataPredicate> data;
  std::optional<SimilarityPredicate> similarity;

  RankingOptions ranking;
  ResultOrder order = ResultOrder::kScore;
  /// Keep at most this many results (0 = all). With kScore this is the
  /// `k` of kNN.
  size_t limit = 0;

  /// When non-null, the planner records generator selection, per-stage
  /// candidate counts, and span timings into it. Null (the default)
  /// means no tracing work happens at all — the hot path stays clean.
  /// Borrowed; must outlive Execute.
  obs::ExecTrace* trace = nullptr;

  // Fluent builders, so call sites read as one sentence.
  MetaQueryRequest& WithKeywords(std::string words, bool match_all = true);
  MetaQueryRequest& WithSubstring(std::string needle);
  MetaQueryRequest& WithFeature(FeatureQuery query);
  MetaQueryRequest& WithStructure(StructuralPattern pattern);
  MetaQueryRequest& WithData(std::vector<DataExample> examples,
                             QueryByDataOptions options = {});
  MetaQueryRequest& SimilarTo(const storage::QueryRecord& probe,
                              const SimilarityWeights& weights = {},
                              const CandidateOptions& candidates = {});
  /// Deleted: the request stores only the probe's address, so a
  /// temporary would dangle before Execute runs. Keep the probe alive in
  /// a local.
  MetaQueryRequest& SimilarTo(storage::QueryRecord&& probe,
                              const SimilarityWeights& weights = {},
                              const CandidateOptions& candidates = {}) = delete;
  MetaQueryRequest& RankedBy(const RankingOptions& options);
  MetaQueryRequest& InLogOrder();
  MetaQueryRequest& Limit(size_t n);
};

/// Which candidate generator the planner chose (introspection/tests).
enum class CandidateGenerator {
  /// Intersection of Symbol-keyed posting lists (keyword / table /
  /// attribute / user predicates) — exact.
  kPostingIntersection,
  /// MinHash/LSH band buckets for a similarity probe — approximate.
  kLshBuckets,
  /// Union of the probe's table posting lists — exact.
  kTableUnion,
  /// Every record — the last resort.
  kFullScan,
};

/// Stable lower_snake name for traces / exposition labels.
inline const char* CandidateGeneratorName(CandidateGenerator g) {
  switch (g) {
    case CandidateGenerator::kPostingIntersection:
      return "posting_intersection";
    case CandidateGenerator::kLshBuckets:
      return "lsh_buckets";
    case CandidateGenerator::kTableUnion:
      return "table_union";
    case CandidateGenerator::kFullScan:
      return "full_scan";
  }
  return "unknown";
}

/// One result row.
struct MetaQueryMatch {
  storage::QueryId id = storage::kInvalidQueryId;
  /// Combined similarity to the probe; 0 when the request carries no
  /// similarity predicate.
  double similarity = 0;
  /// Composite ranked score; 0 under ResultOrder::kLogOrder.
  double score = 0;
};

struct MetaQueryResponse {
  std::vector<MetaQueryMatch> matches;
  CandidateGenerator generator = CandidateGenerator::kFullScan;
  /// Candidates the generator produced (before filtering).
  size_t candidates_considered = 0;

  /// Just the ids, in result order.
  std::vector<storage::QueryId> Ids() const;
};

}  // namespace cqms::metaquery

#endif  // CQMS_METAQUERY_META_QUERY_REQUEST_H_
