#ifndef CQMS_METAQUERY_PARSE_TREE_QUERY_H_
#define CQMS_METAQUERY_PARSE_TREE_QUERY_H_

#include <optional>
#include <string>
#include <vector>

#include "storage/query_store.h"

namespace cqms::metaquery {

/// Query-by-parse-tree (§2.2): conditions on the *structure* of logged
/// queries — joined relations, predicate shapes, nesting, aggregation —
/// independent of constants and output.
struct StructuralPattern {
  /// Every listed table must appear in the query's FROM (any depth).
  std::vector<std::string> required_tables;
  /// None of these tables may appear.
  std::vector<std::string> forbidden_tables;
  /// Required predicate skeletons, e.g. "watertemp.temp < ?" — matches
  /// regardless of the constant (see PredicateFeature::Skeleton).
  std::vector<std::string> required_predicate_skeletons;
  /// Required aggregate functions (upper-case names).
  std::vector<std::string> required_aggregates;
  std::optional<bool> requires_subquery;
  std::optional<bool> requires_group_by;
  std::optional<int> min_joins;
  std::optional<int> max_joins;
  std::optional<int> min_nesting_depth;
};

/// True when `record` (parsed successfully) matches `pattern`.
bool MatchesPattern(const storage::QueryRecord& record,
                    const StructuralPattern& pattern);

/// All visible queries matching the pattern, in log order. Uses the
/// table index for candidate pruning when `required_tables` is non-empty.
std::vector<storage::QueryId> StructuralSearch(const storage::QueryStore& store,
                                               const std::string& viewer,
                                               const StructuralPattern& pattern);

}  // namespace cqms::metaquery

#endif  // CQMS_METAQUERY_PARSE_TREE_QUERY_H_
