#include "metaquery/parse_tree_query.h"

#include <algorithm>

#include "common/string_util.h"

namespace cqms::metaquery {

bool MatchesPattern(const storage::QueryRecord& record,
                    const StructuralPattern& pattern) {
  if (record.parse_failed()) return false;
  const sql::QueryComponents& c = record.components;

  auto has_table = [&](const std::string& t) {
    std::string lower = ToLower(t);
    return std::find(c.tables.begin(), c.tables.end(), lower) != c.tables.end();
  };
  for (const std::string& t : pattern.required_tables) {
    if (!has_table(t)) return false;
  }
  for (const std::string& t : pattern.forbidden_tables) {
    if (has_table(t)) return false;
  }
  for (const std::string& skel : pattern.required_predicate_skeletons) {
    bool found = false;
    for (const auto& p : c.predicates) {
      if (p.Skeleton() == skel) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  for (const std::string& agg : pattern.required_aggregates) {
    std::string upper = ToUpper(agg);
    if (std::find(c.aggregates.begin(), c.aggregates.end(), upper) ==
        c.aggregates.end()) {
      return false;
    }
  }
  if (pattern.requires_subquery && *pattern.requires_subquery != c.has_subquery) {
    return false;
  }
  if (pattern.requires_group_by &&
      *pattern.requires_group_by != !c.group_by.empty()) {
    return false;
  }
  if (pattern.min_joins && c.num_joins < *pattern.min_joins) return false;
  if (pattern.max_joins && c.num_joins > *pattern.max_joins) return false;
  if (pattern.min_nesting_depth && c.max_nesting_depth < *pattern.min_nesting_depth) {
    return false;
  }
  return true;
}

std::vector<storage::QueryId> StructuralSearch(const storage::QueryStore& store,
                                               const std::string& viewer,
                                               const StructuralPattern& pattern) {
  std::vector<storage::QueryId> out;
  if (!pattern.required_tables.empty()) {
    // Prune candidates by the rarest required table.
    const std::vector<storage::QueryId>* smallest = nullptr;
    for (const std::string& t : pattern.required_tables) {
      const auto& ids = store.QueriesUsingTable(t);
      if (smallest == nullptr || ids.size() < smallest->size()) smallest = &ids;
    }
    for (storage::QueryId id : *smallest) {
      const storage::QueryRecord* r = store.Get(id);
      if (r != nullptr && store.Visible(viewer, id) && MatchesPattern(*r, pattern)) {
        out.push_back(id);
      }
    }
    return out;
  }
  for (const storage::QueryRecord& r : store.records()) {
    if (store.Visible(viewer, r.id) && MatchesPattern(r, pattern)) {
      out.push_back(r.id);
    }
  }
  return out;
}

}  // namespace cqms::metaquery
