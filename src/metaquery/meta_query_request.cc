#include "metaquery/meta_query_request.h"

namespace cqms::metaquery {

MetaQueryRequest& MetaQueryRequest::WithKeywords(std::string words,
                                                bool match_all) {
  keyword = KeywordPredicate{std::move(words), match_all};
  return *this;
}

MetaQueryRequest& MetaQueryRequest::WithSubstring(std::string needle) {
  substring = std::move(needle);
  return *this;
}

MetaQueryRequest& MetaQueryRequest::WithFeature(FeatureQuery query) {
  feature = std::move(query);
  return *this;
}

MetaQueryRequest& MetaQueryRequest::WithStructure(StructuralPattern pattern) {
  structure = std::move(pattern);
  return *this;
}

MetaQueryRequest& MetaQueryRequest::WithData(std::vector<DataExample> examples,
                                             QueryByDataOptions options) {
  data = DataPredicate{std::move(examples), options};
  return *this;
}

MetaQueryRequest& MetaQueryRequest::SimilarTo(const storage::QueryRecord& probe,
                                              const SimilarityWeights& weights,
                                              const CandidateOptions& candidates) {
  similarity = SimilarityPredicate{&probe, weights, candidates};
  return *this;
}

MetaQueryRequest& MetaQueryRequest::RankedBy(const RankingOptions& options) {
  ranking = options;
  return *this;
}

MetaQueryRequest& MetaQueryRequest::InLogOrder() {
  order = ResultOrder::kLogOrder;
  return *this;
}

MetaQueryRequest& MetaQueryRequest::Limit(size_t n) {
  limit = n;
  return *this;
}

std::vector<storage::QueryId> MetaQueryResponse::Ids() const {
  std::vector<storage::QueryId> out;
  out.reserve(matches.size());
  for (const MetaQueryMatch& m : matches) out.push_back(m.id);
  return out;
}

}  // namespace cqms::metaquery
