#ifndef CQMS_SQL_LEXER_H_
#define CQMS_SQL_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "sql/token.h"

namespace cqms::sql {

/// Tokenizes `text` into a token vector terminated by a kEof token.
///
/// Handles: `--` line comments, `/* */` block comments, single-quoted
/// string literals with `''` escapes, double-quoted identifiers, integer
/// and decimal/exponent numeric literals, and all operators in TokenKind.
/// Identifiers are kept in original spelling; keywords are normalized to
/// upper case.
Result<std::vector<Token>> Tokenize(std::string_view text);

}  // namespace cqms::sql

#endif  // CQMS_SQL_LEXER_H_
