#include "sql/lexer.h"

#include <cctype>
#include <cstdlib>

#include "common/string_util.h"

namespace cqms::sql {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentCont(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

Result<std::vector<Token>> Tokenize(std::string_view text) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = text.size();

  auto push = [&](TokenKind kind, size_t start, size_t len, std::string spelling = "") {
    Token t;
    t.kind = kind;
    t.text = std::move(spelling);
    t.offset = start;
    t.length = len;
    tokens.push_back(std::move(t));
  };

  while (i < n) {
    char c = text[i];
    // Whitespace.
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '-' && i + 1 < n && text[i + 1] == '-') {
      while (i < n && text[i] != '\n') ++i;
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && text[i + 1] == '*') {
      size_t start = i;
      i += 2;
      while (i + 1 < n && !(text[i] == '*' && text[i + 1] == '/')) ++i;
      if (i + 1 >= n) {
        return Status::ParseError("unterminated block comment at offset " +
                                  std::to_string(start));
      }
      i += 2;
      continue;
    }
    // String literal.
    if (c == '\'') {
      size_t start = i;
      ++i;
      std::string value;
      bool closed = false;
      while (i < n) {
        if (text[i] == '\'') {
          if (i + 1 < n && text[i + 1] == '\'') {
            value.push_back('\'');
            i += 2;
          } else {
            ++i;
            closed = true;
            break;
          }
        } else {
          value.push_back(text[i]);
          ++i;
        }
      }
      if (!closed) {
        return Status::ParseError("unterminated string literal at offset " +
                                  std::to_string(start));
      }
      push(TokenKind::kString, start, i - start, std::move(value));
      continue;
    }
    // Quoted identifier.
    if (c == '"') {
      size_t start = i;
      ++i;
      std::string name;
      bool closed = false;
      while (i < n) {
        if (text[i] == '"') {
          ++i;
          closed = true;
          break;
        }
        name.push_back(text[i]);
        ++i;
      }
      if (!closed || name.empty()) {
        return Status::ParseError("bad quoted identifier at offset " +
                                  std::to_string(start));
      }
      push(TokenKind::kIdentifier, start, i - start, std::move(name));
      continue;
    }
    // Number.
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n && std::isdigit(static_cast<unsigned char>(text[i + 1])))) {
      size_t start = i;
      bool is_float = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(text[i]))) ++i;
      if (i < n && text[i] == '.') {
        is_float = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(text[i]))) ++i;
      }
      if (i < n && (text[i] == 'e' || text[i] == 'E')) {
        size_t exp_start = i;
        ++i;
        if (i < n && (text[i] == '+' || text[i] == '-')) ++i;
        if (i < n && std::isdigit(static_cast<unsigned char>(text[i]))) {
          is_float = true;
          while (i < n && std::isdigit(static_cast<unsigned char>(text[i]))) ++i;
        } else {
          i = exp_start;  // 'e' begins an identifier, not an exponent.
        }
      }
      std::string spelling(text.substr(start, i - start));
      Token t;
      t.offset = start;
      t.length = i - start;
      t.text = spelling;
      if (is_float) {
        t.kind = TokenKind::kFloat;
        t.double_value = std::strtod(spelling.c_str(), nullptr);
      } else {
        t.kind = TokenKind::kInteger;
        t.int_value = std::strtoll(spelling.c_str(), nullptr, 10);
      }
      tokens.push_back(std::move(t));
      continue;
    }
    // Identifier or keyword.
    if (IsIdentStart(c)) {
      size_t start = i;
      while (i < n && IsIdentCont(text[i])) ++i;
      std::string spelling(text.substr(start, i - start));
      std::string upper = ToUpper(spelling);
      if (IsReservedKeyword(upper)) {
        push(TokenKind::kKeyword, start, i - start, std::move(upper));
      } else {
        push(TokenKind::kIdentifier, start, i - start, std::move(spelling));
      }
      continue;
    }
    // Operators and punctuation.
    size_t start = i;
    switch (c) {
      case ',': push(TokenKind::kComma, start, 1); ++i; break;
      case '.': push(TokenKind::kDot, start, 1); ++i; break;
      case '(': push(TokenKind::kLParen, start, 1); ++i; break;
      case ')': push(TokenKind::kRParen, start, 1); ++i; break;
      case '*': push(TokenKind::kStar, start, 1); ++i; break;
      case '+': push(TokenKind::kPlus, start, 1); ++i; break;
      case '-': push(TokenKind::kMinus, start, 1); ++i; break;
      case '/': push(TokenKind::kSlash, start, 1); ++i; break;
      case '%': push(TokenKind::kPercent, start, 1); ++i; break;
      case ';': push(TokenKind::kSemicolon, start, 1); ++i; break;
      case '=': push(TokenKind::kEq, start, 1); ++i; break;
      case '!':
        if (i + 1 < n && text[i + 1] == '=') {
          push(TokenKind::kNeq, start, 2);
          i += 2;
        } else {
          return Status::ParseError("unexpected '!' at offset " + std::to_string(i));
        }
        break;
      case '<':
        if (i + 1 < n && text[i + 1] == '=') {
          push(TokenKind::kLe, start, 2);
          i += 2;
        } else if (i + 1 < n && text[i + 1] == '>') {
          push(TokenKind::kNeq, start, 2);
          i += 2;
        } else {
          push(TokenKind::kLt, start, 1);
          ++i;
        }
        break;
      case '>':
        if (i + 1 < n && text[i + 1] == '=') {
          push(TokenKind::kGe, start, 2);
          i += 2;
        } else {
          push(TokenKind::kGt, start, 1);
          ++i;
        }
        break;
      case '|':
        if (i + 1 < n && text[i + 1] == '|') {
          push(TokenKind::kConcat, start, 2);
          i += 2;
        } else {
          return Status::ParseError("unexpected '|' at offset " + std::to_string(i));
        }
        break;
      default:
        return Status::ParseError(std::string("unexpected character '") + c +
                                  "' at offset " + std::to_string(i));
    }
  }

  Token eof;
  eof.kind = TokenKind::kEof;
  eof.offset = n;
  eof.length = 0;
  tokens.push_back(std::move(eof));
  return tokens;
}

}  // namespace cqms::sql
