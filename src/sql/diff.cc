#include "sql/diff.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/string_util.h"

namespace cqms::sql {

namespace {

/// Set difference helpers over sorted string vectors.
std::vector<std::string> Minus(std::vector<std::string> a, std::vector<std::string> b) {
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  std::vector<std::string> out;
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out));
  return out;
}

}  // namespace

std::string QueryDiff::Summary() const {
  if (edits.empty()) return "(identical)";
  std::vector<std::string> parts;
  parts.reserve(edits.size());
  for (const QueryEdit& e : edits) parts.push_back(e.detail);
  return Join(parts, ", ");
}

QueryDiff DiffQueries(const QueryComponents& a, const QueryComponents& b) {
  QueryDiff diff;

  // Tables.
  for (const auto& t : Minus(b.tables, a.tables)) {
    diff.edits.push_back({QueryEdit::Kind::kAddTable, "+" + t});
  }
  for (const auto& t : Minus(a.tables, b.tables)) {
    diff.edits.push_back({QueryEdit::Kind::kRemoveTable, "-" + t});
  }

  // Predicates, matched in three passes: exact, then same-skeleton
  // (constant modification), then leftovers as add/remove.
  std::vector<const PredicateFeature*> a_preds;
  std::vector<const PredicateFeature*> b_preds;
  for (const auto& p : a.predicates) a_preds.push_back(&p);
  for (const auto& p : b.predicates) b_preds.push_back(&p);

  // Pass 1: drop exact matches.
  for (auto it = a_preds.begin(); it != a_preds.end();) {
    auto match = std::find_if(b_preds.begin(), b_preds.end(),
                              [&](const PredicateFeature* q) { return *q == **it; });
    if (match != b_preds.end()) {
      b_preds.erase(match);
      it = a_preds.erase(it);
    } else {
      ++it;
    }
  }
  // Pass 2: same skeleton, different constant -> kModifyConstant.
  for (auto it = a_preds.begin(); it != a_preds.end();) {
    auto match = std::find_if(b_preds.begin(), b_preds.end(),
                              [&](const PredicateFeature* q) {
                                return q->Skeleton() == (*it)->Skeleton();
                              });
    if (match != b_preds.end()) {
      diff.edits.push_back({QueryEdit::Kind::kModifyConstant,
                            (*it)->ToString() + " -> " + (*match)->ToString()});
      b_preds.erase(match);
      it = a_preds.erase(it);
    } else {
      ++it;
    }
  }
  // Pass 3: leftovers.
  for (const PredicateFeature* p : b_preds) {
    diff.edits.push_back({QueryEdit::Kind::kAddPredicate, "+" + p->ToString()});
  }
  for (const PredicateFeature* p : a_preds) {
    diff.edits.push_back({QueryEdit::Kind::kRemovePredicate, "-" + p->ToString()});
  }

  // Projections.
  for (const auto& p : Minus(b.projections, a.projections)) {
    diff.edits.push_back({QueryEdit::Kind::kAddProjection, "+sel:" + p});
  }
  for (const auto& p : Minus(a.projections, b.projections)) {
    diff.edits.push_back({QueryEdit::Kind::kRemoveProjection, "-sel:" + p});
  }

  // Group by / order by / limit / distinct / aggregates: single edits.
  if (a.group_by != b.group_by) {
    diff.edits.push_back({QueryEdit::Kind::kChangeGroupBy,
                          "group by: " + Join(a.group_by, ",") + " -> " +
                              Join(b.group_by, ",")});
  }
  if (a.order_by != b.order_by) {
    diff.edits.push_back({QueryEdit::Kind::kChangeOrderBy,
                          "order by: " + Join(a.order_by, ",") + " -> " +
                              Join(b.order_by, ",")});
  }
  if (a.limit != b.limit) {
    auto fmt = [](const std::optional<int64_t>& v) {
      return v.has_value() ? std::to_string(*v) : std::string("none");
    };
    diff.edits.push_back({QueryEdit::Kind::kChangeLimit,
                          "limit: " + fmt(a.limit) + " -> " + fmt(b.limit)});
  }
  if (a.has_distinct != b.has_distinct) {
    diff.edits.push_back({QueryEdit::Kind::kToggleDistinct,
                          b.has_distinct ? "+DISTINCT" : "-DISTINCT"});
  }
  if (a.aggregates != b.aggregates) {
    diff.edits.push_back({QueryEdit::Kind::kChangeAggregates,
                          "aggregates: " + Join(a.aggregates, ",") + " -> " +
                              Join(b.aggregates, ",")});
  }

  return diff;
}

QueryDiff DiffQueries(const SelectStatement& a, const SelectStatement& b) {
  return DiffQueries(CollectComponents(a), CollectComponents(b));
}

}  // namespace cqms::sql
