#ifndef CQMS_SQL_PARSER_H_
#define CQMS_SQL_PARSER_H_

#include <memory>
#include <string_view>

#include "common/result.h"
#include "sql/ast.h"

namespace cqms::sql {

/// Parses a complete SELECT statement (optionally UNION-chained and
/// terminated by an optional `;`). Returns kParseError with a message
/// containing the byte offset on malformed input.
Result<std::unique_ptr<SelectStatement>> Parse(std::string_view sql_text);

/// Parses a standalone scalar/boolean expression. Used by meta-query
/// tooling and tests.
Result<std::unique_ptr<Expr>> ParseExpression(std::string_view expr_text);

/// Process-wide count of Parse() invocations. The binary-snapshot
/// restore defers re-parsing to first AST use; the durability tests
/// assert a load performs zero parses by diffing this counter.
uint64_t ParseCallCount();

}  // namespace cqms::sql

#endif  // CQMS_SQL_PARSER_H_
