#include "sql/token.h"

#include <algorithm>
#include <array>

namespace cqms::sql {

namespace {
// Sorted for binary search. Keep in sync with the parser's expectations.
constexpr std::array<std::string_view, 46> kKeywords = {
    "ALL",     "AND",    "AS",      "ASC",     "AVG",      "BETWEEN",
    "BY",      "CASE",   "COUNT",   "CROSS",   "DESC",     "DISTINCT",
    "ELSE",    "END",    "EXCEPT",  "EXISTS",  "FALSE",    "FROM",
    "FULL",    "GROUP",  "HAVING",  "IN",      "INNER",    "INTERSECT",
    "IS",      "JOIN",   "LEFT",    "LIKE",    "LIMIT",    "MAX",
    "MIN",     "NOT",    "NULL",    "OFFSET",  "ON",       "OR",
    "ORDER",   "OUTER",  "RIGHT",   "SELECT",  "SUM",      "THEN",
    "TRUE",    "UNION",  "USING",   "WHEN",
};
// "WHERE" intentionally appended below: keep array sorted overall.
}  // namespace

bool IsReservedKeyword(std::string_view upper_word) {
  if (upper_word == "WHERE") return true;
  return std::binary_search(kKeywords.begin(), kKeywords.end(), upper_word);
}

const char* TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kEof: return "end of input";
    case TokenKind::kIdentifier: return "identifier";
    case TokenKind::kKeyword: return "keyword";
    case TokenKind::kInteger: return "integer literal";
    case TokenKind::kFloat: return "float literal";
    case TokenKind::kString: return "string literal";
    case TokenKind::kComma: return "','";
    case TokenKind::kDot: return "'.'";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kStar: return "'*'";
    case TokenKind::kPlus: return "'+'";
    case TokenKind::kMinus: return "'-'";
    case TokenKind::kSlash: return "'/'";
    case TokenKind::kPercent: return "'%'";
    case TokenKind::kEq: return "'='";
    case TokenKind::kNeq: return "'<>'";
    case TokenKind::kLt: return "'<'";
    case TokenKind::kLe: return "'<='";
    case TokenKind::kGt: return "'>'";
    case TokenKind::kGe: return "'>='";
    case TokenKind::kConcat: return "'||'";
    case TokenKind::kSemicolon: return "';'";
  }
  return "unknown";
}

}  // namespace cqms::sql
