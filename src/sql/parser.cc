#include "sql/parser.h"

#include <atomic>
#include <utility>
#include <vector>

#include "common/string_util.h"
#include "sql/lexer.h"

namespace cqms::sql {

namespace {

std::atomic<uint64_t> g_parse_calls{0};

/// Recursive-descent parser over a pre-lexed token stream.
///
/// Grammar sketch (standard SQL-92 subset):
///   statement   := select (UNION [ALL] select)* [';']
///   select      := SELECT [DISTINCT|ALL] items [FROM refs] [WHERE e]
///                  [GROUP BY list] [HAVING e] [ORDER BY olist]
///                  [LIMIT n [OFFSET m]]
///   expression  := or_expr, with precedence
///                  OR < AND < NOT < comparison < additive < term < unary
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<std::unique_ptr<SelectStatement>> ParseStatement() {
    CQMS_ASSIGN_OR_RETURN(auto stmt, ParseSelect());
    SelectStatement* tail = stmt.get();
    while (MatchKeyword("UNION")) {
      bool all = MatchKeyword("ALL");
      CQMS_ASSIGN_OR_RETURN(auto next, ParseSelect());
      tail->union_next = std::move(next);
      tail->union_all = all;
      tail = tail->union_next.get();
    }
    Match(TokenKind::kSemicolon);
    if (!At(TokenKind::kEof)) {
      return Error("unexpected trailing input");
    }
    return stmt;
  }

  Result<std::unique_ptr<Expr>> ParseStandaloneExpression() {
    CQMS_ASSIGN_OR_RETURN(auto expr, ParseExpr());
    if (!At(TokenKind::kEof)) {
      return Status::ParseError("unexpected trailing input after expression");
    }
    return expr;
  }

 private:
  // --- token helpers -----------------------------------------------------

  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    if (i >= tokens_.size()) i = tokens_.size() - 1;  // EOF token
    return tokens_[i];
  }
  bool At(TokenKind kind) const { return Peek().kind == kind; }
  bool AtKeyword(std::string_view kw) const { return Peek().IsKeyword(kw); }

  const Token& Advance() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }

  bool Match(TokenKind kind) {
    if (At(kind)) {
      Advance();
      return true;
    }
    return false;
  }
  bool MatchKeyword(std::string_view kw) {
    if (AtKeyword(kw)) {
      Advance();
      return true;
    }
    return false;
  }

  Status Error(std::string msg) const {
    const Token& t = Peek();
    return Status::ParseError(msg + " at offset " + std::to_string(t.offset) +
                              " (near " + std::string(TokenKindName(t.kind)) +
                              (t.text.empty() ? "" : " '" + t.text + "'") + ")");
  }

  Status Expect(TokenKind kind) {
    if (Match(kind)) return Status::Ok();
    return Error(std::string("expected ") + TokenKindName(kind));
  }
  Status ExpectKeyword(std::string_view kw) {
    if (MatchKeyword(kw)) return Status::Ok();
    return Error("expected keyword " + std::string(kw));
  }

  Result<std::string> ExpectIdentifier(const char* what) {
    if (At(TokenKind::kIdentifier)) {
      return std::string(Advance().text);
    }
    return Error(std::string("expected ") + what);
  }

  // --- statement ---------------------------------------------------------

  Result<std::unique_ptr<SelectStatement>> ParseSelect() {
    CQMS_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    auto stmt = std::make_unique<SelectStatement>();
    if (MatchKeyword("DISTINCT")) {
      stmt->distinct = true;
    } else {
      MatchKeyword("ALL");
    }

    // Select list.
    do {
      CQMS_ASSIGN_OR_RETURN(auto item, ParseSelectItem());
      stmt->select_items.push_back(std::move(item));
    } while (Match(TokenKind::kComma));

    if (MatchKeyword("FROM")) {
      CQMS_RETURN_IF_ERROR(ParseFromClause(stmt.get()));
    }
    if (MatchKeyword("WHERE")) {
      CQMS_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
    }
    if (MatchKeyword("GROUP")) {
      CQMS_RETURN_IF_ERROR(ExpectKeyword("BY"));
      do {
        CQMS_ASSIGN_OR_RETURN(auto g, ParseExpr());
        stmt->group_by.push_back(std::move(g));
      } while (Match(TokenKind::kComma));
    }
    if (MatchKeyword("HAVING")) {
      CQMS_ASSIGN_OR_RETURN(stmt->having, ParseExpr());
    }
    if (MatchKeyword("ORDER")) {
      CQMS_RETURN_IF_ERROR(ExpectKeyword("BY"));
      do {
        OrderItem item;
        CQMS_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (MatchKeyword("DESC")) {
          item.descending = true;
        } else {
          MatchKeyword("ASC");
        }
        stmt->order_by.push_back(std::move(item));
      } while (Match(TokenKind::kComma));
    }
    if (MatchKeyword("LIMIT")) {
      if (!At(TokenKind::kInteger)) return Error("expected integer after LIMIT");
      stmt->limit = Advance().int_value;
      if (MatchKeyword("OFFSET")) {
        if (!At(TokenKind::kInteger)) return Error("expected integer after OFFSET");
        stmt->offset = Advance().int_value;
      }
    }
    return stmt;
  }

  Result<SelectItem> ParseSelectItem() {
    SelectItem item;
    // Bare `*`.
    if (At(TokenKind::kStar)) {
      Advance();
      item.is_star = true;
      return item;
    }
    // `t.*` — lookahead: IDENT '.' '*'.
    if (At(TokenKind::kIdentifier) && Peek(1).kind == TokenKind::kDot &&
        Peek(2).kind == TokenKind::kStar) {
      item.is_star = true;
      item.star_table = Advance().text;
      Advance();  // '.'
      Advance();  // '*'
      return item;
    }
    CQMS_ASSIGN_OR_RETURN(item.expr, ParseExpr());
    if (MatchKeyword("AS")) {
      CQMS_ASSIGN_OR_RETURN(item.alias, ExpectIdentifier("alias after AS"));
    } else if (At(TokenKind::kIdentifier)) {
      item.alias = Advance().text;
    }
    return item;
  }

  Status ParseFromClause(SelectStatement* stmt) {
    CQMS_ASSIGN_OR_RETURN(TableRef first, ParseTableRef());
    stmt->from.push_back(std::move(first));
    while (true) {
      if (Match(TokenKind::kComma)) {
        CQMS_ASSIGN_OR_RETURN(TableRef tr, ParseTableRef());
        tr.join_type = JoinType::kCross;
        tr.explicit_join_syntax = false;
        stmt->from.push_back(std::move(tr));
        continue;
      }
      JoinType jt;
      if (MatchKeyword("JOIN")) {
        jt = JoinType::kInner;
      } else if (MatchKeyword("INNER")) {
        CQMS_RETURN_IF_ERROR(ExpectKeyword("JOIN"));
        jt = JoinType::kInner;
      } else if (MatchKeyword("LEFT")) {
        MatchKeyword("OUTER");
        CQMS_RETURN_IF_ERROR(ExpectKeyword("JOIN"));
        jt = JoinType::kLeft;
      } else if (MatchKeyword("RIGHT")) {
        MatchKeyword("OUTER");
        CQMS_RETURN_IF_ERROR(ExpectKeyword("JOIN"));
        jt = JoinType::kRight;
      } else if (MatchKeyword("CROSS")) {
        CQMS_RETURN_IF_ERROR(ExpectKeyword("JOIN"));
        jt = JoinType::kCross;
      } else {
        break;
      }
      CQMS_ASSIGN_OR_RETURN(TableRef tr, ParseTableRef());
      tr.join_type = jt;
      tr.explicit_join_syntax = true;
      if (jt != JoinType::kCross) {
        if (MatchKeyword("ON")) {
          CQMS_ASSIGN_OR_RETURN(tr.join_condition, ParseExpr());
        } else if (jt != JoinType::kInner) {
          return Error("outer join requires ON condition");
        }
      }
      stmt->from.push_back(std::move(tr));
    }
    return Status::Ok();
  }

  Result<TableRef> ParseTableRef() {
    TableRef tr;
    CQMS_ASSIGN_OR_RETURN(tr.table, ExpectIdentifier("table name"));
    if (MatchKeyword("AS")) {
      CQMS_ASSIGN_OR_RETURN(tr.alias, ExpectIdentifier("alias after AS"));
    } else if (At(TokenKind::kIdentifier)) {
      tr.alias = Advance().text;
    }
    return tr;
  }

  // --- expressions ---------------------------------------------------------

  Result<std::unique_ptr<Expr>> ParseExpr() { return ParseOr(); }

  Result<std::unique_ptr<Expr>> ParseOr() {
    CQMS_ASSIGN_OR_RETURN(auto left, ParseAnd());
    while (MatchKeyword("OR")) {
      CQMS_ASSIGN_OR_RETURN(auto right, ParseAnd());
      left = Expr::MakeBinary(BinaryOp::kOr, std::move(left), std::move(right));
    }
    return left;
  }

  Result<std::unique_ptr<Expr>> ParseAnd() {
    CQMS_ASSIGN_OR_RETURN(auto left, ParseNot());
    while (AtKeyword("AND")) {
      Advance();
      CQMS_ASSIGN_OR_RETURN(auto right, ParseNot());
      left = Expr::MakeBinary(BinaryOp::kAnd, std::move(left), std::move(right));
    }
    return left;
  }

  Result<std::unique_ptr<Expr>> ParseNot() {
    if (MatchKeyword("NOT")) {
      CQMS_ASSIGN_OR_RETURN(auto operand, ParseNot());
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kUnary;
      e->uop = UnaryOp::kNot;
      e->left = std::move(operand);
      return e;
    }
    return ParseComparison();
  }

  Result<std::unique_ptr<Expr>> ParseComparison() {
    CQMS_ASSIGN_OR_RETURN(auto left, ParseAdditive());
    // IS [NOT] NULL
    if (MatchKeyword("IS")) {
      bool negated = MatchKeyword("NOT");
      CQMS_RETURN_IF_ERROR(ExpectKeyword("NULL"));
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kIsNull;
      e->negated = negated;
      e->left = std::move(left);
      return Result<std::unique_ptr<Expr>>(std::move(e));
    }
    bool negated = false;
    if (AtKeyword("NOT") &&
        (Peek(1).IsKeyword("IN") || Peek(1).IsKeyword("BETWEEN") ||
         Peek(1).IsKeyword("LIKE"))) {
      Advance();
      negated = true;
    }
    if (MatchKeyword("IN")) {
      CQMS_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
      auto e = std::make_unique<Expr>();
      e->negated = negated;
      e->left = std::move(left);
      if (AtKeyword("SELECT")) {
        e->kind = ExprKind::kInSubquery;
        CQMS_ASSIGN_OR_RETURN(e->subquery, ParseSelect());
      } else {
        e->kind = ExprKind::kInList;
        do {
          CQMS_ASSIGN_OR_RETURN(auto item, ParseExpr());
          e->in_list.push_back(std::move(item));
        } while (Match(TokenKind::kComma));
      }
      CQMS_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
      return Result<std::unique_ptr<Expr>>(std::move(e));
    }
    if (MatchKeyword("BETWEEN")) {
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kBetween;
      e->negated = negated;
      e->left = std::move(left);
      CQMS_ASSIGN_OR_RETURN(e->low, ParseAdditive());
      CQMS_RETURN_IF_ERROR(ExpectKeyword("AND"));
      CQMS_ASSIGN_OR_RETURN(e->high, ParseAdditive());
      return Result<std::unique_ptr<Expr>>(std::move(e));
    }
    if (MatchKeyword("LIKE")) {
      CQMS_ASSIGN_OR_RETURN(auto pattern, ParseAdditive());
      return Result<std::unique_ptr<Expr>>(Expr::MakeBinary(
          negated ? BinaryOp::kNotLike : BinaryOp::kLike, std::move(left),
          std::move(pattern)));
    }
    if (negated) return Error("expected IN, BETWEEN or LIKE after NOT");

    BinaryOp op;
    switch (Peek().kind) {
      case TokenKind::kEq: op = BinaryOp::kEq; break;
      case TokenKind::kNeq: op = BinaryOp::kNeq; break;
      case TokenKind::kLt: op = BinaryOp::kLt; break;
      case TokenKind::kLe: op = BinaryOp::kLe; break;
      case TokenKind::kGt: op = BinaryOp::kGt; break;
      case TokenKind::kGe: op = BinaryOp::kGe; break;
      default:
        return left;
    }
    Advance();
    CQMS_ASSIGN_OR_RETURN(auto right, ParseAdditive());
    return Result<std::unique_ptr<Expr>>(
        Expr::MakeBinary(op, std::move(left), std::move(right)));
  }

  Result<std::unique_ptr<Expr>> ParseAdditive() {
    CQMS_ASSIGN_OR_RETURN(auto left, ParseTerm());
    while (true) {
      BinaryOp op;
      if (At(TokenKind::kPlus)) op = BinaryOp::kAdd;
      else if (At(TokenKind::kMinus)) op = BinaryOp::kSub;
      else if (At(TokenKind::kConcat)) op = BinaryOp::kConcat;
      else break;
      Advance();
      CQMS_ASSIGN_OR_RETURN(auto right, ParseTerm());
      left = Expr::MakeBinary(op, std::move(left), std::move(right));
    }
    return left;
  }

  Result<std::unique_ptr<Expr>> ParseTerm() {
    CQMS_ASSIGN_OR_RETURN(auto left, ParseUnary());
    while (true) {
      BinaryOp op;
      if (At(TokenKind::kStar)) op = BinaryOp::kMul;
      else if (At(TokenKind::kSlash)) op = BinaryOp::kDiv;
      else if (At(TokenKind::kPercent)) op = BinaryOp::kMod;
      else break;
      Advance();
      CQMS_ASSIGN_OR_RETURN(auto right, ParseUnary());
      left = Expr::MakeBinary(op, std::move(left), std::move(right));
    }
    return left;
  }

  Result<std::unique_ptr<Expr>> ParseUnary() {
    if (Match(TokenKind::kMinus)) {
      CQMS_ASSIGN_OR_RETURN(auto operand, ParseUnary());
      // Fold negation of numeric literals so `-5` is a literal, matching
      // what feature extraction and diffing expect.
      if (operand->kind == ExprKind::kLiteral) {
        if (operand->literal.kind == Literal::Kind::kInteger) {
          operand->literal.int_value = -operand->literal.int_value;
          return Result<std::unique_ptr<Expr>>(std::move(operand));
        }
        if (operand->literal.kind == Literal::Kind::kFloat) {
          operand->literal.double_value = -operand->literal.double_value;
          return Result<std::unique_ptr<Expr>>(std::move(operand));
        }
      }
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kUnary;
      e->uop = UnaryOp::kNegate;
      e->left = std::move(operand);
      return Result<std::unique_ptr<Expr>>(std::move(e));
    }
    if (Match(TokenKind::kPlus)) {
      return ParseUnary();
    }
    return ParsePrimary();
  }

  Result<std::unique_ptr<Expr>> ParsePrimary() {
    const Token& t = Peek();
    switch (t.kind) {
      case TokenKind::kInteger: {
        auto e = Expr::MakeLiteral(Literal::Int(t.int_value));
        Advance();
        return Result<std::unique_ptr<Expr>>(std::move(e));
      }
      case TokenKind::kFloat: {
        auto e = Expr::MakeLiteral(Literal::Float(t.double_value));
        Advance();
        return Result<std::unique_ptr<Expr>>(std::move(e));
      }
      case TokenKind::kString: {
        auto e = Expr::MakeLiteral(Literal::String(t.text));
        Advance();
        return Result<std::unique_ptr<Expr>>(std::move(e));
      }
      case TokenKind::kLParen: {
        Advance();
        if (AtKeyword("SELECT")) {
          auto e = std::make_unique<Expr>();
          e->kind = ExprKind::kScalarSubquery;
          CQMS_ASSIGN_OR_RETURN(e->subquery, ParseSelect());
          CQMS_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
          return Result<std::unique_ptr<Expr>>(std::move(e));
        }
        CQMS_ASSIGN_OR_RETURN(auto inner, ParseExpr());
        CQMS_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
        return Result<std::unique_ptr<Expr>>(std::move(inner));
      }
      case TokenKind::kKeyword: {
        if (t.text == "NULL") {
          Advance();
          return Result<std::unique_ptr<Expr>>(Expr::MakeLiteral(Literal::Null()));
        }
        if (t.text == "TRUE" || t.text == "FALSE") {
          bool v = t.text == "TRUE";
          Advance();
          return Result<std::unique_ptr<Expr>>(Expr::MakeLiteral(Literal::Bool(v)));
        }
        if (IsAggregateFunction(t.text)) {
          std::string name = t.text;
          Advance();
          return ParseFunctionArgs(std::move(name));
        }
        if (t.text == "CASE") {
          Advance();
          return ParseCase();
        }
        if (t.text == "EXISTS") {
          Advance();
          auto e = std::make_unique<Expr>();
          e->kind = ExprKind::kExists;
          CQMS_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
          CQMS_ASSIGN_OR_RETURN(e->subquery, ParseSelect());
          CQMS_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
          return Result<std::unique_ptr<Expr>>(std::move(e));
        }
        return Error("unexpected keyword in expression");
      }
      case TokenKind::kIdentifier: {
        std::string first = t.text;
        Advance();
        // Function call?
        if (At(TokenKind::kLParen)) {
          return ParseFunctionArgs(ToUpper(first));
        }
        // Qualified column or t.* .
        if (Match(TokenKind::kDot)) {
          if (At(TokenKind::kStar)) {
            Advance();
            auto e = Expr::MakeStar();
            e->table = first;
            return Result<std::unique_ptr<Expr>>(std::move(e));
          }
          CQMS_ASSIGN_OR_RETURN(auto col, ExpectIdentifier("column name after '.'"));
          return Result<std::unique_ptr<Expr>>(
              Expr::MakeColumn(std::move(first), std::move(col)));
        }
        return Result<std::unique_ptr<Expr>>(Expr::MakeColumn("", std::move(first)));
      }
      default:
        return Error("expected expression");
    }
  }

  Result<std::unique_ptr<Expr>> ParseFunctionArgs(std::string upper_name) {
    CQMS_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kFunctionCall;
    e->function_name = std::move(upper_name);
    if (Match(TokenKind::kRParen)) {
      return Result<std::unique_ptr<Expr>>(std::move(e));
    }
    if (MatchKeyword("DISTINCT")) e->distinct_arg = true;
    if (At(TokenKind::kStar)) {
      Advance();
      e->args.push_back(Expr::MakeStar());
    } else {
      do {
        CQMS_ASSIGN_OR_RETURN(auto arg, ParseExpr());
        e->args.push_back(std::move(arg));
      } while (Match(TokenKind::kComma));
    }
    CQMS_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
    return Result<std::unique_ptr<Expr>>(std::move(e));
  }

  Result<std::unique_ptr<Expr>> ParseCase() {
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kCase;
    if (!AtKeyword("WHEN")) {
      CQMS_ASSIGN_OR_RETURN(e->case_operand, ParseExpr());
    }
    while (MatchKeyword("WHEN")) {
      CQMS_ASSIGN_OR_RETURN(auto when, ParseExpr());
      CQMS_RETURN_IF_ERROR(ExpectKeyword("THEN"));
      CQMS_ASSIGN_OR_RETURN(auto then, ParseExpr());
      e->when_clauses.emplace_back(std::move(when), std::move(then));
    }
    if (e->when_clauses.empty()) return Error("CASE requires at least one WHEN");
    if (MatchKeyword("ELSE")) {
      CQMS_ASSIGN_OR_RETURN(e->else_expr, ParseExpr());
    }
    CQMS_RETURN_IF_ERROR(ExpectKeyword("END"));
    return Result<std::unique_ptr<Expr>>(std::move(e));
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<std::unique_ptr<SelectStatement>> Parse(std::string_view sql_text) {
  g_parse_calls.fetch_add(1, std::memory_order_relaxed);
  CQMS_ASSIGN_OR_RETURN(auto tokens, Tokenize(sql_text));
  Parser parser(std::move(tokens));
  return parser.ParseStatement();
}

uint64_t ParseCallCount() {
  return g_parse_calls.load(std::memory_order_relaxed);
}

Result<std::unique_ptr<Expr>> ParseExpression(std::string_view expr_text) {
  CQMS_ASSIGN_OR_RETURN(auto tokens, Tokenize(expr_text));
  Parser parser(std::move(tokens));
  return parser.ParseStandaloneExpression();
}

}  // namespace cqms::sql
