#include "sql/printer.h"

#include <cctype>

#include "common/string_util.h"
#include "sql/token.h"

namespace cqms::sql {

namespace {

/// True when `name` cannot be written as a bare identifier: empty, bad
/// leading char, non-identifier chars, or a reserved word.
bool NeedsQuoting(const std::string& name) {
  if (name.empty()) return true;
  if (!std::isalpha(static_cast<unsigned char>(name[0])) && name[0] != '_') {
    return true;
  }
  for (char c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') return true;
  }
  return IsReservedKeyword(ToUpper(name));
}

std::string QuoteIfNeeded(const std::string& name) {
  if (!NeedsQuoting(name)) return name;
  return "\"" + name + "\"";
}

// Operator precedence for minimal-parenthesis printing. Higher binds
// tighter. Mirrors the parser's grammar levels.
int Precedence(BinaryOp op) {
  switch (op) {
    case BinaryOp::kOr: return 1;
    case BinaryOp::kAnd: return 2;
    case BinaryOp::kEq:
    case BinaryOp::kNeq:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
    case BinaryOp::kLike:
    case BinaryOp::kNotLike: return 4;
    case BinaryOp::kAdd:
    case BinaryOp::kSub:
    case BinaryOp::kConcat: return 5;
    case BinaryOp::kMul:
    case BinaryOp::kDiv:
    case BinaryOp::kMod: return 6;
  }
  return 8;
}

class PrinterImpl {
 public:
  explicit PrinterImpl(const PrintOptions& opts) : opts_(opts) {}

  std::string Ident(const std::string& name) const {
    return QuoteIfNeeded(opts_.lowercase_identifiers ? ToLower(name) : name);
  }

  std::string Expr_(const Expr& e, int parent_prec) const {
    switch (e.kind) {
      case ExprKind::kLiteral:
        return opts_.strip_constants ? "?" : e.literal.ToString();
      case ExprKind::kColumnRef:
        return e.table.empty() ? Ident(e.column) : Ident(e.table) + "." + Ident(e.column);
      case ExprKind::kStar:
        return e.table.empty() ? "*" : Ident(e.table) + ".*";
      case ExprKind::kUnary: {
        if (e.uop == UnaryOp::kNot) {
          std::string s = "NOT " + Expr_(*e.left, 3);
          return parent_prec > 3 ? "(" + s + ")" : s;
        }
        std::string s = "-" + Expr_(*e.left, 7);
        return parent_prec > 7 ? "(" + s + ")" : s;
      }
      case ExprKind::kBinary: {
        int prec = Precedence(e.bop);
        // Left child may share our precedence (left associativity);
        // right child must bind strictly tighter, except for the
        // associative AND/OR chains where equal precedence is fine.
        bool assoc = e.bop == BinaryOp::kAnd || e.bop == BinaryOp::kOr ||
                     e.bop == BinaryOp::kAdd || e.bop == BinaryOp::kMul ||
                     e.bop == BinaryOp::kConcat;
        std::string s = Expr_(*e.left, prec) + " " + BinaryOpToString(e.bop) + " " +
                        Expr_(*e.right, assoc ? prec : prec + 1);
        return prec < parent_prec ? "(" + s + ")" : s;
      }
      case ExprKind::kFunctionCall: {
        std::string s = e.function_name + "(";
        if (e.distinct_arg) s += "DISTINCT ";
        for (size_t i = 0; i < e.args.size(); ++i) {
          if (i > 0) s += ", ";
          s += Expr_(*e.args[i], 0);
        }
        s += ")";
        return s;
      }
      case ExprKind::kInList: {
        std::string s = Expr_(*e.left, 5) + (e.negated ? " NOT IN (" : " IN (");
        for (size_t i = 0; i < e.in_list.size(); ++i) {
          if (i > 0) s += ", ";
          s += Expr_(*e.in_list[i], 0);
        }
        s += ")";
        return parent_prec > 4 ? "(" + s + ")" : s;
      }
      case ExprKind::kInSubquery: {
        std::string s = Expr_(*e.left, 5) + (e.negated ? " NOT IN (" : " IN (") +
                        Statement_(*e.subquery) + ")";
        return parent_prec > 4 ? "(" + s + ")" : s;
      }
      case ExprKind::kBetween: {
        std::string s = Expr_(*e.left, 5) + (e.negated ? " NOT BETWEEN " : " BETWEEN ") +
                        Expr_(*e.low, 5) + " AND " + Expr_(*e.high, 5);
        return parent_prec > 4 ? "(" + s + ")" : s;
      }
      case ExprKind::kIsNull: {
        std::string s = Expr_(*e.left, 5) + (e.negated ? " IS NOT NULL" : " IS NULL");
        return parent_prec > 4 ? "(" + s + ")" : s;
      }
      case ExprKind::kCase: {
        std::string s = "CASE";
        if (e.case_operand) s += " " + Expr_(*e.case_operand, 0);
        for (const auto& [w, t] : e.when_clauses) {
          s += " WHEN " + Expr_(*w, 0) + " THEN " + Expr_(*t, 0);
        }
        if (e.else_expr) s += " ELSE " + Expr_(*e.else_expr, 0);
        s += " END";
        return s;
      }
      case ExprKind::kExists:
        return std::string(e.negated ? "NOT " : "") + "EXISTS (" +
               Statement_(*e.subquery) + ")";
      case ExprKind::kScalarSubquery:
        return "(" + Statement_(*e.subquery) + ")";
    }
    return "?";
  }

  std::string Statement_(const SelectStatement& stmt) const {
    std::string s = "SELECT ";
    if (stmt.distinct) s += "DISTINCT ";
    for (size_t i = 0; i < stmt.select_items.size(); ++i) {
      if (i > 0) s += ", ";
      const SelectItem& item = stmt.select_items[i];
      if (item.is_star) {
        s += item.star_table.empty() ? "*" : Ident(item.star_table) + ".*";
      } else {
        s += Expr_(*item.expr, 0);
        if (!item.alias.empty()) s += " AS " + Ident(item.alias);
      }
    }
    if (!stmt.from.empty()) {
      s += " FROM ";
      for (size_t i = 0; i < stmt.from.size(); ++i) {
        const TableRef& tr = stmt.from[i];
        if (i > 0) {
          if (tr.explicit_join_syntax) {
            s += " ";
            s += JoinTypeToString(tr.join_type);
            s += " ";
          } else {
            s += ", ";
          }
        }
        s += Ident(tr.table);
        if (!tr.alias.empty()) s += " " + Ident(tr.alias);
        if (tr.join_condition) s += " ON " + Expr_(*tr.join_condition, 0);
      }
    }
    if (stmt.where) s += " WHERE " + Expr_(*stmt.where, 0);
    if (!stmt.group_by.empty()) {
      s += " GROUP BY ";
      for (size_t i = 0; i < stmt.group_by.size(); ++i) {
        if (i > 0) s += ", ";
        s += Expr_(*stmt.group_by[i], 0);
      }
    }
    if (stmt.having) s += " HAVING " + Expr_(*stmt.having, 0);
    if (!stmt.order_by.empty()) {
      s += " ORDER BY ";
      for (size_t i = 0; i < stmt.order_by.size(); ++i) {
        if (i > 0) s += ", ";
        s += Expr_(*stmt.order_by[i].expr, 0);
        if (stmt.order_by[i].descending) s += " DESC";
      }
    }
    if (stmt.limit.has_value()) {
      s += " LIMIT " + std::to_string(*stmt.limit);
      if (stmt.offset.has_value()) s += " OFFSET " + std::to_string(*stmt.offset);
    }
    if (stmt.union_next) {
      s += stmt.union_all ? " UNION ALL " : " UNION ";
      s += Statement_(*stmt.union_next);
    }
    return s;
  }

 private:
  PrintOptions opts_;
};

}  // namespace

std::string PrintExpr(const Expr& expr, const PrintOptions& opts) {
  return PrinterImpl(opts).Expr_(expr, 0);
}

std::string PrintStatement(const SelectStatement& stmt, const PrintOptions& opts) {
  return PrinterImpl(opts).Statement_(stmt);
}

std::string PrettyPrintStatement(const SelectStatement& stmt) {
  PrinterImpl printer{PrintOptions{}};
  std::string s = "SELECT ";
  if (stmt.distinct) s += "DISTINCT ";
  for (size_t i = 0; i < stmt.select_items.size(); ++i) {
    if (i > 0) s += ",\n       ";
    const SelectItem& item = stmt.select_items[i];
    if (item.is_star) {
      s += item.star_table.empty() ? "*" : QuoteIfNeeded(item.star_table) + ".*";
    } else {
      s += PrintExpr(*item.expr);
      if (!item.alias.empty()) s += " AS " + QuoteIfNeeded(item.alias);
    }
  }
  if (!stmt.from.empty()) {
    s += "\nFROM ";
    for (size_t i = 0; i < stmt.from.size(); ++i) {
      const TableRef& tr = stmt.from[i];
      if (i > 0) {
        if (tr.explicit_join_syntax) {
          s += "\n  ";
          s += JoinTypeToString(tr.join_type);
          s += " ";
        } else {
          s += ", ";
        }
      }
      s += QuoteIfNeeded(tr.table);
      if (!tr.alias.empty()) s += " " + QuoteIfNeeded(tr.alias);
      if (tr.join_condition) s += " ON " + PrintExpr(*tr.join_condition);
    }
  }
  if (stmt.where) {
    s += "\nWHERE ";
    auto conjuncts = SplitConjuncts(stmt.where.get());
    for (size_t i = 0; i < conjuncts.size(); ++i) {
      if (i > 0) s += "\n  AND ";
      s += PrintExpr(*conjuncts[i]);
    }
  }
  if (!stmt.group_by.empty()) {
    s += "\nGROUP BY ";
    for (size_t i = 0; i < stmt.group_by.size(); ++i) {
      if (i > 0) s += ", ";
      s += PrintExpr(*stmt.group_by[i]);
    }
  }
  if (stmt.having) s += "\nHAVING " + PrintExpr(*stmt.having);
  if (!stmt.order_by.empty()) {
    s += "\nORDER BY ";
    for (size_t i = 0; i < stmt.order_by.size(); ++i) {
      if (i > 0) s += ", ";
      s += PrintExpr(*stmt.order_by[i].expr);
      if (stmt.order_by[i].descending) s += " DESC";
    }
  }
  if (stmt.limit.has_value()) {
    s += "\nLIMIT " + std::to_string(*stmt.limit);
    if (stmt.offset.has_value()) s += " OFFSET " + std::to_string(*stmt.offset);
  }
  if (stmt.union_next) {
    s += stmt.union_all ? "\nUNION ALL\n" : "\nUNION\n";
    s += PrettyPrintStatement(*stmt.union_next);
  }
  return s;
}

}  // namespace cqms::sql
