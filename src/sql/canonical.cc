#include "sql/canonical.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/hash.h"
#include "sql/printer.h"

namespace cqms::sql {

namespace {

/// Rebuilds a left-deep AND chain from sorted conjunct clones.
std::unique_ptr<Expr> RebuildConjunction(std::vector<std::unique_ptr<Expr>> conjuncts) {
  if (conjuncts.empty()) return nullptr;
  std::unique_ptr<Expr> acc = std::move(conjuncts[0]);
  for (size_t i = 1; i < conjuncts.size(); ++i) {
    acc = Expr::MakeBinary(BinaryOp::kAnd, std::move(acc), std::move(conjuncts[i]));
  }
  return acc;
}

void CanonicalizeInPlace(SelectStatement* stmt) {
  PrintOptions canon;
  canon.lowercase_identifiers = true;

  // Sort top-level WHERE conjuncts by printed form.
  if (stmt->where) {
    auto conjuncts = SplitConjuncts(stmt->where.get());
    if (conjuncts.size() > 1) {
      std::vector<std::pair<std::string, std::unique_ptr<Expr>>> keyed;
      keyed.reserve(conjuncts.size());
      for (const Expr* c : conjuncts) {
        keyed.emplace_back(PrintExpr(*c, canon), c->Clone());
      }
      std::sort(keyed.begin(), keyed.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
      std::vector<std::unique_ptr<Expr>> sorted;
      sorted.reserve(keyed.size());
      for (auto& [key, expr] : keyed) sorted.push_back(std::move(expr));
      stmt->where = RebuildConjunction(std::move(sorted));
    }
  }

  // Sort the comma-joined suffix of the FROM list. Only reorder runs of
  // implicit cross joins (no ON conditions); explicit JOIN chains encode
  // semantics in their order.
  if (stmt->from.size() > 1) {
    bool all_implicit = true;
    for (size_t i = 1; i < stmt->from.size(); ++i) {
      if (stmt->from[i].explicit_join_syntax || stmt->from[i].join_condition) {
        all_implicit = false;
        break;
      }
    }
    if (all_implicit) {
      std::stable_sort(stmt->from.begin(), stmt->from.end(),
                       [](const TableRef& a, const TableRef& b) {
                         return a.table < b.table;
                       });
      // Re-establish the invariant: first entry has no join type.
      stmt->from[0].join_type = JoinType::kNone;
      for (size_t i = 1; i < stmt->from.size(); ++i) {
        stmt->from[i].join_type = JoinType::kCross;
        stmt->from[i].explicit_join_syntax = false;
      }
    }
  }

  // Recurse into subqueries.
  WalkStatementExprs(
      stmt,
      [](Expr* e) {
        if (e->subquery) CanonicalizeInPlace(e->subquery.get());
      },
      /*enter_subqueries=*/false);

  if (stmt->union_next) CanonicalizeInPlace(stmt->union_next.get());
}

}  // namespace

std::unique_ptr<SelectStatement> Canonicalize(const SelectStatement& stmt) {
  auto clone = stmt.Clone();
  CanonicalizeInPlace(clone.get());
  return clone;
}

std::string CanonicalText(const SelectStatement& stmt) {
  auto canon = Canonicalize(stmt);
  PrintOptions opts;
  opts.lowercase_identifiers = true;
  return PrintStatement(*canon, opts);
}

std::string CanonicalSkeleton(const SelectStatement& stmt) {
  auto canon = Canonicalize(stmt);
  PrintOptions opts;
  opts.lowercase_identifiers = true;
  opts.strip_constants = true;
  return PrintStatement(*canon, opts);
}

uint64_t Fingerprint(const SelectStatement& stmt) {
  return Fnv1a64(CanonicalText(stmt));
}

uint64_t SkeletonFingerprint(const SelectStatement& stmt) {
  return Fnv1a64(CanonicalSkeleton(stmt));
}

}  // namespace cqms::sql
