#ifndef CQMS_SQL_TOKEN_H_
#define CQMS_SQL_TOKEN_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace cqms::sql {

/// Lexical token categories. Keywords share a single kind and carry their
/// normalized (upper-case) spelling in `text`; the parser matches them by
/// spelling, which keeps this enum small and the lexer table-driven.
enum class TokenKind {
  kEof,
  kIdentifier,  ///< Bare or double-quoted identifier; `text` holds spelling.
  kKeyword,     ///< Reserved word; `text` holds the upper-cased spelling.
  kInteger,     ///< Integer literal; value in `int_value`.
  kFloat,       ///< Floating literal; value in `double_value`.
  kString,      ///< Single-quoted string; unescaped value in `text`.
  // Punctuation and operators.
  kComma,
  kDot,
  kLParen,
  kRParen,
  kStar,     ///< `*`: multiplication or wildcard, disambiguated by parser.
  kPlus,
  kMinus,
  kSlash,
  kPercent,
  kEq,       ///< `=`
  kNeq,      ///< `<>` or `!=`
  kLt,
  kLe,
  kGt,
  kGe,
  kConcat,   ///< `||`
  kSemicolon,
};

/// Returns a short printable name for diagnostics ("identifier", "','"...).
const char* TokenKindName(TokenKind kind);

/// A single lexical token with its source position (for error messages
/// and for completion: the client needs to know where the cursor token
/// starts).
struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;        ///< Spelling (normalized for keywords).
  int64_t int_value = 0;   ///< Valid when kind == kInteger.
  double double_value = 0; ///< Valid when kind == kFloat.
  size_t offset = 0;       ///< Byte offset of the token start in the input.
  size_t length = 0;       ///< Byte length of the token in the input.

  bool IsKeyword(std::string_view kw) const {
    return kind == TokenKind::kKeyword && text == kw;
  }
};

/// True if `word` (upper-cased) is a reserved SQL keyword in this dialect.
bool IsReservedKeyword(std::string_view upper_word);

}  // namespace cqms::sql

#endif  // CQMS_SQL_TOKEN_H_
