#ifndef CQMS_SQL_CANONICAL_H_
#define CQMS_SQL_CANONICAL_H_

#include <cstdint>
#include <memory>
#include <string>

#include "sql/ast.h"

namespace cqms::sql {

/// Returns a canonicalized clone of `stmt`:
///  - top-level WHERE conjuncts sorted by their printed form (AND is
///    commutative, so `a AND b` and `b AND a` become identical);
///  - comma-joined FROM tables sorted by name (pure cross products are
///    order-insensitive; explicit JOIN chains are left untouched);
///  - applied recursively to subqueries and UNION arms.
std::unique_ptr<SelectStatement> Canonicalize(const SelectStatement& stmt);

/// Canonical single-line text: canonicalized structure, lower-cased
/// identifiers. Two queries with equal canonical text are treated as the
/// same query by deduplication and popularity counting.
std::string CanonicalText(const SelectStatement& stmt);

/// Canonical text with all constants replaced by `?` — the query
/// *skeleton*. The paper (§4.3) proposes comparing parse trees "after
/// removing the constants"; equal skeletons mean same structure.
std::string CanonicalSkeleton(const SelectStatement& stmt);

/// 64-bit fingerprint of `CanonicalText` (deduplication key).
uint64_t Fingerprint(const SelectStatement& stmt);

/// 64-bit fingerprint of `CanonicalSkeleton` (structure key).
uint64_t SkeletonFingerprint(const SelectStatement& stmt);

}  // namespace cqms::sql

#endif  // CQMS_SQL_CANONICAL_H_
