#ifndef CQMS_SQL_PRINTER_H_
#define CQMS_SQL_PRINTER_H_

#include <string>

#include "sql/ast.h"

namespace cqms::sql {

/// Controls SQL rendering.
struct PrintOptions {
  /// Replace every literal constant with `?`. Used to build query
  /// *skeletons*: the paper's similarity measures suggest comparing parse
  /// trees "after removing the constants from the tree" (§4.3).
  bool strip_constants = false;

  /// Lower-case all identifiers. Canonical form uses this so that
  /// `WaterTemp` and `watertemp` compare equal.
  bool lowercase_identifiers = false;
};

/// Renders an expression as SQL text (single line, minimal parentheses).
std::string PrintExpr(const Expr& expr, const PrintOptions& opts = {});

/// Renders a full statement as single-line SQL text.
std::string PrintStatement(const SelectStatement& stmt, const PrintOptions& opts = {});

/// Renders a statement as indented multi-line SQL for human display
/// (query browser, recommendation panel).
std::string PrettyPrintStatement(const SelectStatement& stmt);

}  // namespace cqms::sql

#endif  // CQMS_SQL_PRINTER_H_
