#ifndef CQMS_SQL_COMPONENTS_H_
#define CQMS_SQL_COMPONENTS_H_

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "sql/ast.h"

namespace cqms::sql {

/// One WHERE/HAVING/ON predicate decomposed into the shape the paper's
/// `Predicates(qid, attrName, relName, op, const)` feature relation stores
/// (Figure 1).
struct PredicateFeature {
  std::string relation;   ///< Resolved relation name (lower-cased); may be "".
  std::string attribute;  ///< Column name (lower-cased); may be "".
  std::string op;         ///< "=", "<", "LIKE", "IN", "BETWEEN", "IS NULL", "EXPR"...
  std::string constant;   ///< Printed constant side; "" for join predicates.
  bool is_join = false;   ///< True when both sides reference columns.
  std::string rhs_relation;   ///< For join predicates: right side relation.
  std::string rhs_attribute;  ///< For join predicates: right side attribute.

  /// Human-readable rendering, e.g. "watertemp.temp < 18".
  std::string ToString() const;

  /// Rendering with the constant replaced by `?`; two predicates with
  /// equal skeletons differ only in their constants (used by the session
  /// diff to detect "tried different conditions on temp", Figure 2).
  std::string Skeleton() const;

  bool operator==(const PredicateFeature& other) const;
};

/// Syntactic decomposition of one statement: the raw material for the
/// Query Profiler's feature extraction, the structural diff, and the
/// similarity measures.
struct QueryComponents {
  std::vector<std::string> tables;  ///< Resolved, lower-cased, deduplicated.
  /// (relation, attribute) pairs referenced anywhere; lower-cased.
  std::vector<std::pair<std::string, std::string>> attributes;
  std::vector<std::string> projections;  ///< Printed select items (canonical).
  std::vector<PredicateFeature> predicates;
  std::vector<std::string> group_by;     ///< Printed group-by expressions.
  std::vector<std::string> order_by;     ///< Printed order-by expressions.
  std::vector<std::string> aggregates;   ///< Aggregate function names used.
  bool has_subquery = false;
  bool has_distinct = false;
  bool select_star = false;
  int num_joins = 0;       ///< |FROM entries| - 1 summed over the statement.
  int num_tables = 0;      ///< Total FROM entries (with duplicates).
  int max_nesting_depth = 0;  ///< 0 for flat queries.
  std::optional<int64_t> limit;
};

/// Extracts `QueryComponents` from a statement. Aliases are resolved
/// within each (sub)query scope; unqualified columns resolve to the
/// single in-scope table when unambiguous, otherwise their relation is
/// left empty. Identifiers are normalized to lower case.
QueryComponents CollectComponents(const SelectStatement& stmt);

}  // namespace cqms::sql

#endif  // CQMS_SQL_COMPONENTS_H_
