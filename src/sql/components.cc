#include "sql/components.h"

#include <algorithm>
#include <map>
#include <set>
#include <tuple>

#include "common/string_util.h"
#include "sql/printer.h"

namespace cqms::sql {

std::string PredicateFeature::ToString() const {
  if (is_join) {
    return relation + "." + attribute + " " + op + " " + rhs_relation + "." +
           rhs_attribute;
  }
  std::string lhs = relation.empty() ? attribute : relation + "." + attribute;
  if (op == "IS NULL" || op == "IS NOT NULL") return lhs + " " + op;
  if (op == "EXPR") return constant;  // whole expression printed
  return lhs + " " + op + " " + constant;
}

std::string PredicateFeature::Skeleton() const {
  if (is_join) return ToString();
  std::string lhs = relation.empty() ? attribute : relation + "." + attribute;
  if (op == "IS NULL" || op == "IS NOT NULL") return lhs + " " + op;
  if (op == "EXPR") return "EXPR(" + lhs + ")";
  return lhs + " " + op + " ?";
}

bool PredicateFeature::operator==(const PredicateFeature& other) const {
  return relation == other.relation && attribute == other.attribute &&
         op == other.op && constant == other.constant && is_join == other.is_join &&
         rhs_relation == other.rhs_relation && rhs_attribute == other.rhs_attribute;
}

namespace {

/// Per-statement-scope collector. Each subquery gets its own scope with
/// its own alias map; results accumulate into the shared output.
class Collector {
 public:
  explicit Collector(QueryComponents* out) : out_(out) {}

  void CollectStatement(const SelectStatement& stmt, int depth) {
    out_->max_nesting_depth = std::max(out_->max_nesting_depth, depth);

    // Build this scope's alias map.
    std::map<std::string, std::string> alias_to_table;
    std::vector<std::string> scope_tables;
    for (const TableRef& tr : stmt.from) {
      std::string table = ToLower(tr.table);
      std::string effective = ToLower(tr.EffectiveName());
      alias_to_table[effective] = table;
      alias_to_table[table] = table;  // tables addressable by their own name
      scope_tables.push_back(table);
      tables_seen_.insert(table);
      ++out_->num_tables;
    }
    if (stmt.from.size() > 1) {
      out_->num_joins += static_cast<int>(stmt.from.size()) - 1;
    }
    if (stmt.distinct) out_->has_distinct = true;
    if (stmt.limit.has_value() && !out_->limit.has_value()) out_->limit = stmt.limit;

    auto resolve = [&](const std::string& qualifier) -> std::string {
      if (qualifier.empty()) {
        return scope_tables.size() == 1 ? scope_tables[0] : std::string();
      }
      auto it = alias_to_table.find(ToLower(qualifier));
      return it == alias_to_table.end() ? ToLower(qualifier) : it->second;
    };

    // Select list: projections + attribute refs.
    PrintOptions canon;
    canon.lowercase_identifiers = true;
    for (const SelectItem& item : stmt.select_items) {
      if (item.is_star) {
        out_->select_star = true;
        out_->projections.push_back(
            item.star_table.empty() ? "*" : ToLower(item.star_table) + ".*");
        continue;
      }
      out_->projections.push_back(PrintExpr(*item.expr, canon));
      CollectExprAttributes(*item.expr, resolve, depth);
    }

    // FROM join conditions are predicates too.
    for (const TableRef& tr : stmt.from) {
      if (tr.join_condition) {
        CollectPredicates(*tr.join_condition, resolve, depth);
        CollectExprAttributes(*tr.join_condition, resolve, depth);
      }
    }
    if (stmt.where) {
      CollectPredicates(*stmt.where, resolve, depth);
      CollectExprAttributes(*stmt.where, resolve, depth);
    }
    for (const auto& g : stmt.group_by) {
      out_->group_by.push_back(PrintExpr(*g, canon));
      CollectExprAttributes(*g, resolve, depth);
    }
    if (stmt.having) {
      CollectPredicates(*stmt.having, resolve, depth);
      CollectExprAttributes(*stmt.having, resolve, depth);
    }
    for (const auto& o : stmt.order_by) {
      out_->order_by.push_back(PrintExpr(*o.expr, canon) +
                               (o.descending ? " DESC" : ""));
      CollectExprAttributes(*o.expr, resolve, depth);
    }
    if (stmt.union_next) CollectStatement(*stmt.union_next, depth);
  }

  void Finish() {
    out_->tables.assign(tables_seen_.begin(), tables_seen_.end());
    std::sort(out_->tables.begin(), out_->tables.end());
    std::sort(attributes_seen_.begin(), attributes_seen_.end());
    attributes_seen_.erase(
        std::unique(attributes_seen_.begin(), attributes_seen_.end()),
        attributes_seen_.end());
    out_->attributes = std::move(attributes_seen_);
    std::sort(out_->aggregates.begin(), out_->aggregates.end());
    out_->aggregates.erase(
        std::unique(out_->aggregates.begin(), out_->aggregates.end()),
        out_->aggregates.end());
  }

 private:
  template <typename Resolve>
  void CollectExprAttributes(const Expr& e, const Resolve& resolve, int depth) {
    // Walk without entering subqueries; subqueries are collected with
    // their own scope below. WalkExpr takes Expr* but we never mutate.
    WalkExpr(const_cast<Expr*>(&e),
             [&](Expr* node) {
               if (node->kind == ExprKind::kColumnRef) {
                 attributes_seen_.emplace_back(resolve(node->table),
                                               ToLower(node->column));
               } else if (node->kind == ExprKind::kFunctionCall &&
                          IsAggregateFunction(node->function_name)) {
                 out_->aggregates.push_back(node->function_name);
               }
             },
             /*enter_subqueries=*/false);
    // Recurse into subqueries with fresh scopes.
    WalkExpr(const_cast<Expr*>(&e),
             [&](Expr* node) {
               if (node->subquery) {
                 out_->has_subquery = true;
                 CollectStatement(*node->subquery, depth + 1);
               }
             },
             /*enter_subqueries=*/false);
  }

  /// True if the expression references any column (without entering
  /// subqueries): distinguishes constant sides of comparisons.
  static bool HasColumnRef(const Expr& e) {
    bool found = false;
    WalkExpr(const_cast<Expr*>(&e),
             [&](Expr* node) {
               if (node->kind == ExprKind::kColumnRef) found = true;
             },
             /*enter_subqueries=*/false);
    return found;
  }

  /// First column reference in the expression, if any.
  static const Expr* FirstColumnRef(const Expr& e) {
    const Expr* found = nullptr;
    WalkExpr(const_cast<Expr*>(&e),
             [&](Expr* node) {
               if (found == nullptr && node->kind == ExprKind::kColumnRef) {
                 found = node;
               }
             },
             /*enter_subqueries=*/false);
    return found;
  }

  template <typename Resolve>
  void CollectPredicates(const Expr& root, const Resolve& resolve, int depth) {
    PrintOptions canon;
    canon.lowercase_identifiers = true;
    for (const Expr* conjunct : SplitConjuncts(&root)) {
      PredicateFeature pf;
      const Expr& e = *conjunct;
      if (e.kind == ExprKind::kBinary && IsComparisonOp(e.bop)) {
        const bool left_cols = HasColumnRef(*e.left);
        const bool right_cols = HasColumnRef(*e.right);
        if (left_cols && right_cols) {
          const Expr* lc = FirstColumnRef(*e.left);
          const Expr* rc = FirstColumnRef(*e.right);
          pf.is_join = true;
          pf.relation = resolve(lc->table);
          pf.attribute = ToLower(lc->column);
          pf.op = BinaryOpToString(e.bop);
          pf.rhs_relation = resolve(rc->table);
          pf.rhs_attribute = ToLower(rc->column);
          // Normalize join orientation so a.x = b.y and b.y = a.x match.
          if (pf.op == "=" &&
              std::tie(pf.rhs_relation, pf.rhs_attribute) <
                  std::tie(pf.relation, pf.attribute)) {
            std::swap(pf.relation, pf.rhs_relation);
            std::swap(pf.attribute, pf.rhs_attribute);
          }
        } else if (left_cols || right_cols) {
          const Expr& col_side = left_cols ? *e.left : *e.right;
          const Expr& const_side = left_cols ? *e.right : *e.left;
          const Expr* col = FirstColumnRef(col_side);
          pf.relation = resolve(col->table);
          pf.attribute = ToLower(col->column);
          pf.op = BinaryOpToString(e.bop);
          if (!left_cols) {
            // Flip operator direction: 18 > temp  =>  temp < 18.
            if (pf.op == "<") pf.op = ">";
            else if (pf.op == "<=") pf.op = ">=";
            else if (pf.op == ">") pf.op = "<";
            else if (pf.op == ">=") pf.op = "<=";
          }
          pf.constant = PrintExpr(const_side, canon);
        } else {
          pf.op = "EXPR";
          pf.constant = PrintExpr(e, canon);
        }
      } else if (e.kind == ExprKind::kInList || e.kind == ExprKind::kInSubquery) {
        const Expr* col = FirstColumnRef(*e.left);
        if (col != nullptr) {
          pf.relation = resolve(col->table);
          pf.attribute = ToLower(col->column);
        }
        pf.op = e.negated ? "NOT IN" : "IN";
        if (e.kind == ExprKind::kInList) {
          std::string list = "(";
          for (size_t i = 0; i < e.in_list.size(); ++i) {
            if (i > 0) list += ", ";
            list += PrintExpr(*e.in_list[i], canon);
          }
          list += ")";
          pf.constant = std::move(list);
        } else {
          pf.constant = "(subquery)";
        }
      } else if (e.kind == ExprKind::kBetween) {
        const Expr* col = FirstColumnRef(*e.left);
        if (col != nullptr) {
          pf.relation = resolve(col->table);
          pf.attribute = ToLower(col->column);
        }
        pf.op = e.negated ? "NOT BETWEEN" : "BETWEEN";
        pf.constant =
            PrintExpr(*e.low, canon) + " AND " + PrintExpr(*e.high, canon);
      } else if (e.kind == ExprKind::kIsNull) {
        const Expr* col = FirstColumnRef(*e.left);
        if (col != nullptr) {
          pf.relation = resolve(col->table);
          pf.attribute = ToLower(col->column);
        }
        pf.op = e.negated ? "IS NOT NULL" : "IS NULL";
      } else {
        // OR-expressions, NOT, EXISTS, bare booleans: keep whole text.
        const Expr* col = FirstColumnRef(e);
        if (col != nullptr) {
          pf.relation = resolve(col->table);
          pf.attribute = ToLower(col->column);
        }
        pf.op = "EXPR";
        pf.constant = PrintExpr(e, canon);
      }
      out_->predicates.push_back(std::move(pf));
    }
  }

  QueryComponents* out_;
  std::set<std::string> tables_seen_;
  std::vector<std::pair<std::string, std::string>> attributes_seen_;
};

}  // namespace

QueryComponents CollectComponents(const SelectStatement& stmt) {
  QueryComponents out;
  Collector collector(&out);
  collector.CollectStatement(stmt, 0);
  collector.Finish();
  return out;
}

}  // namespace cqms::sql
