#include "sql/ast.h"

#include "common/string_util.h"

namespace cqms::sql {

std::string Literal::ToString() const {
  switch (kind) {
    case Kind::kNull:
      return "NULL";
    case Kind::kInteger:
      return std::to_string(int_value);
    case Kind::kFloat:
      return FormatDouble(double_value);
    case Kind::kString:
      return "'" + SqlEscape(string_value) + "'";
    case Kind::kBool:
      return bool_value ? "TRUE" : "FALSE";
  }
  return "NULL";
}

bool Literal::operator==(const Literal& other) const {
  if (kind != other.kind) return false;
  switch (kind) {
    case Kind::kNull:
      return true;
    case Kind::kInteger:
      return int_value == other.int_value;
    case Kind::kFloat:
      return double_value == other.double_value;
    case Kind::kString:
      return string_value == other.string_value;
    case Kind::kBool:
      return bool_value == other.bool_value;
  }
  return false;
}

const char* BinaryOpToString(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
    case BinaryOp::kMod: return "%";
    case BinaryOp::kEq: return "=";
    case BinaryOp::kNeq: return "<>";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kLe: return "<=";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kGe: return ">=";
    case BinaryOp::kAnd: return "AND";
    case BinaryOp::kOr: return "OR";
    case BinaryOp::kLike: return "LIKE";
    case BinaryOp::kNotLike: return "NOT LIKE";
    case BinaryOp::kConcat: return "||";
  }
  return "?";
}

bool IsComparisonOp(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNeq:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
    case BinaryOp::kLike:
    case BinaryOp::kNotLike:
      return true;
    default:
      return false;
  }
}

bool IsAggregateFunction(std::string_view upper_name) {
  return upper_name == "COUNT" || upper_name == "SUM" || upper_name == "AVG" ||
         upper_name == "MIN" || upper_name == "MAX";
}

const char* JoinTypeToString(JoinType t) {
  switch (t) {
    case JoinType::kNone: return "";
    case JoinType::kInner: return "JOIN";
    case JoinType::kLeft: return "LEFT JOIN";
    case JoinType::kRight: return "RIGHT JOIN";
    case JoinType::kCross: return "CROSS JOIN";
  }
  return "";
}

std::unique_ptr<Expr> Expr::Clone() const {
  auto out = std::make_unique<Expr>();
  out->kind = kind;
  out->literal = literal;
  out->table = table;
  out->column = column;
  out->uop = uop;
  out->bop = bop;
  if (left) out->left = left->Clone();
  if (right) out->right = right->Clone();
  out->function_name = function_name;
  out->args.reserve(args.size());
  for (const auto& a : args) out->args.push_back(a->Clone());
  out->distinct_arg = distinct_arg;
  out->negated = negated;
  out->in_list.reserve(in_list.size());
  for (const auto& e : in_list) out->in_list.push_back(e->Clone());
  if (subquery) out->subquery = subquery->Clone();
  if (low) out->low = low->Clone();
  if (high) out->high = high->Clone();
  if (case_operand) out->case_operand = case_operand->Clone();
  out->when_clauses.reserve(when_clauses.size());
  for (const auto& [w, t] : when_clauses) {
    out->when_clauses.emplace_back(w->Clone(), t->Clone());
  }
  if (else_expr) out->else_expr = else_expr->Clone();
  return out;
}

std::unique_ptr<Expr> Expr::MakeLiteral(Literal lit) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kLiteral;
  e->literal = std::move(lit);
  return e;
}

std::unique_ptr<Expr> Expr::MakeColumn(std::string table, std::string column) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kColumnRef;
  e->table = std::move(table);
  e->column = std::move(column);
  return e;
}

std::unique_ptr<Expr> Expr::MakeBinary(BinaryOp op, std::unique_ptr<Expr> l,
                                       std::unique_ptr<Expr> r) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kBinary;
  e->bop = op;
  e->left = std::move(l);
  e->right = std::move(r);
  return e;
}

std::unique_ptr<Expr> Expr::MakeStar() {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kStar;
  return e;
}

TableRef TableRef::Clone() const {
  TableRef out;
  out.table = table;
  out.alias = alias;
  out.join_type = join_type;
  if (join_condition) out.join_condition = join_condition->Clone();
  out.explicit_join_syntax = explicit_join_syntax;
  return out;
}

SelectItem SelectItem::Clone() const {
  SelectItem out;
  out.is_star = is_star;
  out.star_table = star_table;
  if (expr) out.expr = expr->Clone();
  out.alias = alias;
  return out;
}

OrderItem OrderItem::Clone() const {
  OrderItem out;
  if (expr) out.expr = expr->Clone();
  out.descending = descending;
  return out;
}

std::unique_ptr<SelectStatement> SelectStatement::Clone() const {
  auto out = std::make_unique<SelectStatement>();
  out->distinct = distinct;
  out->select_items.reserve(select_items.size());
  for (const auto& s : select_items) out->select_items.push_back(s.Clone());
  out->from.reserve(from.size());
  for (const auto& t : from) out->from.push_back(t.Clone());
  if (where) out->where = where->Clone();
  out->group_by.reserve(group_by.size());
  for (const auto& g : group_by) out->group_by.push_back(g->Clone());
  if (having) out->having = having->Clone();
  out->order_by.reserve(order_by.size());
  for (const auto& o : order_by) out->order_by.push_back(o.Clone());
  out->limit = limit;
  out->offset = offset;
  if (union_next) out->union_next = union_next->Clone();
  out->union_all = union_all;
  return out;
}

void WalkExpr(Expr* expr, const std::function<void(Expr*)>& fn,
              bool enter_subqueries) {
  if (expr == nullptr) return;
  fn(expr);
  if (expr->left) WalkExpr(expr->left.get(), fn, enter_subqueries);
  if (expr->right) WalkExpr(expr->right.get(), fn, enter_subqueries);
  for (auto& a : expr->args) WalkExpr(a.get(), fn, enter_subqueries);
  for (auto& e : expr->in_list) WalkExpr(e.get(), fn, enter_subqueries);
  if (expr->low) WalkExpr(expr->low.get(), fn, enter_subqueries);
  if (expr->high) WalkExpr(expr->high.get(), fn, enter_subqueries);
  if (expr->case_operand) WalkExpr(expr->case_operand.get(), fn, enter_subqueries);
  for (auto& [w, t] : expr->when_clauses) {
    WalkExpr(w.get(), fn, enter_subqueries);
    WalkExpr(t.get(), fn, enter_subqueries);
  }
  if (expr->else_expr) WalkExpr(expr->else_expr.get(), fn, enter_subqueries);
  if (expr->subquery && enter_subqueries) {
    WalkStatementExprs(expr->subquery.get(), fn, enter_subqueries);
  }
}

void WalkStatementExprs(SelectStatement* stmt, const std::function<void(Expr*)>& fn,
                        bool enter_subqueries) {
  if (stmt == nullptr) return;
  for (auto& item : stmt->select_items) {
    if (item.expr) WalkExpr(item.expr.get(), fn, enter_subqueries);
  }
  for (auto& tref : stmt->from) {
    if (tref.join_condition) WalkExpr(tref.join_condition.get(), fn, enter_subqueries);
  }
  if (stmt->where) WalkExpr(stmt->where.get(), fn, enter_subqueries);
  for (auto& g : stmt->group_by) WalkExpr(g.get(), fn, enter_subqueries);
  if (stmt->having) WalkExpr(stmt->having.get(), fn, enter_subqueries);
  for (auto& o : stmt->order_by) {
    if (o.expr) WalkExpr(o.expr.get(), fn, enter_subqueries);
  }
  if (stmt->union_next) WalkStatementExprs(stmt->union_next.get(), fn, enter_subqueries);
}

std::vector<const Expr*> SplitConjuncts(const Expr* expr) {
  std::vector<const Expr*> out;
  if (expr == nullptr) return out;
  if (expr->kind == ExprKind::kBinary && expr->bop == BinaryOp::kAnd) {
    auto l = SplitConjuncts(expr->left.get());
    auto r = SplitConjuncts(expr->right.get());
    out.insert(out.end(), l.begin(), l.end());
    out.insert(out.end(), r.begin(), r.end());
  } else {
    out.push_back(expr);
  }
  return out;
}

}  // namespace cqms::sql
