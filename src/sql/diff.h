#ifndef CQMS_SQL_DIFF_H_
#define CQMS_SQL_DIFF_H_

#include <string>
#include <vector>

#include "sql/ast.h"
#include "sql/components.h"

namespace cqms::sql {

/// One typed edit transforming query A toward query B. These are the
/// edge labels of the paper's Figure 2 session visualization
/// ("+WaterSalinity", "'temp < 22' -> 'temp < 18'", "+2 predicates").
struct QueryEdit {
  enum class Kind {
    kAddTable,
    kRemoveTable,
    kAddPredicate,
    kRemovePredicate,
    kModifyConstant,   ///< Same predicate skeleton, different constant.
    kAddProjection,
    kRemoveProjection,
    kChangeGroupBy,
    kChangeOrderBy,
    kChangeLimit,
    kToggleDistinct,
    kChangeAggregates,
  };

  Kind kind;
  std::string detail;  ///< e.g. "+WaterSalinity" or "temp < 22 -> temp < 18".

  /// Short label for visualization edges.
  const std::string& Label() const { return detail; }
};

/// Structural difference between two queries.
struct QueryDiff {
  std::vector<QueryEdit> edits;

  /// Number of edits; the structural edit distance used by the
  /// sessionizer and the similarity measures.
  size_t Distance() const { return edits.size(); }

  bool Identical() const { return edits.empty(); }

  /// Compact one-line rendering ("+t:watertemp, ~temp < ?").
  std::string Summary() const;
};

/// Computes the typed structural diff from `a` to `b` using their
/// component decompositions. Constant-only changes on the same predicate
/// skeleton are reported as kModifyConstant rather than a remove+add
/// pair, matching the session-graph semantics of Figure 2.
QueryDiff DiffQueries(const QueryComponents& a, const QueryComponents& b);

/// Convenience overload that collects components first.
QueryDiff DiffQueries(const SelectStatement& a, const SelectStatement& b);

}  // namespace cqms::sql

#endif  // CQMS_SQL_DIFF_H_
