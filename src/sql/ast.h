#ifndef CQMS_SQL_AST_H_
#define CQMS_SQL_AST_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace cqms::sql {

/// A SQL literal constant. Lives in the `sql` layer (not `db`) so the
/// parser has no dependency on the execution engine; `db::Value` converts
/// from it at bind time.
struct Literal {
  enum class Kind { kNull, kInteger, kFloat, kString, kBool };

  Kind kind = Kind::kNull;
  int64_t int_value = 0;
  double double_value = 0;
  std::string string_value;
  bool bool_value = false;

  static Literal Null() { return Literal{}; }
  static Literal Int(int64_t v) {
    Literal l;
    l.kind = Kind::kInteger;
    l.int_value = v;
    return l;
  }
  static Literal Float(double v) {
    Literal l;
    l.kind = Kind::kFloat;
    l.double_value = v;
    return l;
  }
  static Literal String(std::string v) {
    Literal l;
    l.kind = Kind::kString;
    l.string_value = std::move(v);
    return l;
  }
  static Literal Bool(bool v) {
    Literal l;
    l.kind = Kind::kBool;
    l.bool_value = v;
    return l;
  }

  /// SQL spelling of the literal (strings quoted and escaped).
  std::string ToString() const;

  bool operator==(const Literal& other) const;
};

enum class UnaryOp { kNot, kNegate };

enum class BinaryOp {
  kAdd, kSub, kMul, kDiv, kMod,
  kEq, kNeq, kLt, kLe, kGt, kGe,
  kAnd, kOr,
  kLike, kNotLike,
  kConcat,
};

/// SQL spelling of a binary operator ("=", "AND", "LIKE", ...).
const char* BinaryOpToString(BinaryOp op);

/// True for comparison operators (=, <>, <, <=, >, >=, LIKE, NOT LIKE).
bool IsComparisonOp(BinaryOp op);

struct SelectStatement;

/// Expression node kinds. A single variant-style struct keeps the tree
/// simple to clone, walk and print; memory compactness is not a concern
/// for query *management* workloads (queries are tiny relative to data).
enum class ExprKind {
  kLiteral,
  kColumnRef,
  kStar,            ///< `*` or `t.*` inside a select list or COUNT(*).
  kUnary,
  kBinary,
  kFunctionCall,
  kInList,          ///< expr [NOT] IN (e1, e2, ...)
  kInSubquery,      ///< expr [NOT] IN (SELECT ...)
  kBetween,         ///< expr [NOT] BETWEEN low AND high
  kIsNull,          ///< expr IS [NOT] NULL
  kCase,            ///< CASE [operand] WHEN .. THEN .. [ELSE ..] END
  kExists,          ///< [NOT] EXISTS (SELECT ...)
  kScalarSubquery,  ///< (SELECT ...) used as a value
};

/// A SQL expression tree node.
struct Expr {
  ExprKind kind = ExprKind::kLiteral;

  // kLiteral
  Literal literal;

  // kColumnRef / kStar: `table` may be empty (unqualified).
  std::string table;
  std::string column;

  // kUnary / kBinary
  UnaryOp uop = UnaryOp::kNot;
  BinaryOp bop = BinaryOp::kEq;
  std::unique_ptr<Expr> left;
  std::unique_ptr<Expr> right;

  // kFunctionCall: `function_name` upper-cased; `distinct_arg` for
  // e.g. COUNT(DISTINCT x); `args` may hold a kStar child for COUNT(*).
  std::string function_name;
  std::vector<std::unique_ptr<Expr>> args;
  bool distinct_arg = false;

  // kInList / kInSubquery / kBetween / kIsNull / kExists / kLike-negation.
  bool negated = false;
  std::vector<std::unique_ptr<Expr>> in_list;
  std::unique_ptr<SelectStatement> subquery;  // also kScalarSubquery
  std::unique_ptr<Expr> low;
  std::unique_ptr<Expr> high;

  // kCase
  std::unique_ptr<Expr> case_operand;  // may be null (searched CASE)
  std::vector<std::pair<std::unique_ptr<Expr>, std::unique_ptr<Expr>>> when_clauses;
  std::unique_ptr<Expr> else_expr;

  /// Deep copy.
  std::unique_ptr<Expr> Clone() const;

  // Convenience factories used by tests, the repair engine and the
  // meta-query generator.
  static std::unique_ptr<Expr> MakeLiteral(Literal lit);
  static std::unique_ptr<Expr> MakeColumn(std::string table, std::string column);
  static std::unique_ptr<Expr> MakeBinary(BinaryOp op, std::unique_ptr<Expr> l,
                                          std::unique_ptr<Expr> r);
  static std::unique_ptr<Expr> MakeStar();
};

/// True if `upper_name` is one of the five built-in aggregate functions.
bool IsAggregateFunction(std::string_view upper_name);

enum class JoinType { kNone, kInner, kLeft, kRight, kCross };

/// SQL spelling of a join type ("JOIN", "LEFT JOIN", ...).
const char* JoinTypeToString(JoinType t);

/// One entry in a FROM clause. The first entry has `join_type == kNone`;
/// later entries record how they attach to the accumulated join tree.
/// Comma-separated FROM lists are represented as kCross joins without a
/// condition — the canonical internal form.
struct TableRef {
  std::string table;
  std::string alias;  ///< Empty when not aliased.
  JoinType join_type = JoinType::kNone;
  std::unique_ptr<Expr> join_condition;  ///< ON-expression; may be null.
  bool explicit_join_syntax = false;  ///< True for `JOIN ... ON`, false for commas.

  TableRef Clone() const;

  /// The name that references this table in column qualifiers: the alias
  /// if present, otherwise the table name.
  const std::string& EffectiveName() const { return alias.empty() ? table : alias; }
};

/// One select-list item: either `*` / `t.*` or an expression with an
/// optional alias.
struct SelectItem {
  bool is_star = false;
  std::string star_table;  ///< Qualifier for `t.*`; empty for bare `*`.
  std::unique_ptr<Expr> expr;
  std::string alias;

  SelectItem Clone() const;
};

struct OrderItem {
  std::unique_ptr<Expr> expr;
  bool descending = false;

  OrderItem Clone() const;
};

/// A full SELECT statement, possibly chained by UNION [ALL].
struct SelectStatement {
  bool distinct = false;
  std::vector<SelectItem> select_items;
  std::vector<TableRef> from;
  std::unique_ptr<Expr> where;
  std::vector<std::unique_ptr<Expr>> group_by;
  std::unique_ptr<Expr> having;
  std::vector<OrderItem> order_by;
  std::optional<int64_t> limit;
  std::optional<int64_t> offset;

  /// Next statement in a UNION chain (owned), or null.
  std::unique_ptr<SelectStatement> union_next;
  bool union_all = false;

  std::unique_ptr<SelectStatement> Clone() const;
};

/// Calls `fn` on `expr` and every descendant expression, including
/// expressions inside subqueries when `enter_subqueries` is true.
/// Mutation of visited nodes is allowed; structure must not be changed
/// during the walk.
void WalkExpr(Expr* expr, const std::function<void(Expr*)>& fn,
              bool enter_subqueries = true);

/// Calls `fn` on every expression anywhere in `stmt` (select list, joins,
/// where, group by, having, order by), recursing into UNION arms and,
/// optionally, subqueries.
void WalkStatementExprs(SelectStatement* stmt, const std::function<void(Expr*)>& fn,
                        bool enter_subqueries = true);

/// Splits a boolean expression into top-level AND-ed conjuncts
/// (borrowed terminology: CNF top level). The returned pointers alias
/// into `expr`; they are valid while `expr` lives.
std::vector<const Expr*> SplitConjuncts(const Expr* expr);

}  // namespace cqms::sql

#endif  // CQMS_SQL_AST_H_
