#include "common/frame_codec.h"

#include <cstring>

#include "common/binary_codec.h"

namespace cqms {

namespace {

uint32_t LoadFixed32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;  // little-endian hosts only, like the WAL's framing.
}

void StoreFixed32(char* p, uint32_t v) { std::memcpy(p, &v, sizeof(v)); }

}  // namespace

void AppendFrame(std::string* out, std::string_view payload) {
  char header[kFrameHeaderBytes];
  StoreFixed32(header, static_cast<uint32_t>(payload.size()));
  StoreFixed32(header + 4, Crc32(payload));
  out->append(header, kFrameHeaderBytes);
  out->append(payload.data(), payload.size());
}

void FrameDecoder::Feed(const char* data, size_t n) {
  if (failed()) return;
  // Reclaim consumed prefix before growing; keeps the buffer bounded by
  // one partial frame plus whatever one Feed delivered.
  if (pos_ > 0 && (pos_ >= buf_.size() || pos_ > 4096)) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  buf_.append(data, n);
}

FrameDecoder::Next FrameDecoder::Poll(std::string* payload) {
  if (failed()) return Next::kError;
  if (buf_.size() - pos_ < kFrameHeaderBytes) return Next::kNeedMore;
  const char* base = buf_.data() + pos_;
  uint32_t len = LoadFixed32(base);
  if (len > max_frame_bytes_) {
    error_ = Status::InvalidArgument("frame length " + std::to_string(len) +
                                     " exceeds limit " +
                                     std::to_string(max_frame_bytes_));
    return Next::kError;
  }
  if (buf_.size() - pos_ - kFrameHeaderBytes < len) return Next::kNeedMore;
  uint32_t want_crc = LoadFixed32(base + 4);
  std::string_view body(base + kFrameHeaderBytes, len);
  if (Crc32(body) != want_crc) {
    error_ = Status::Corruption("frame CRC mismatch");
    return Next::kError;
  }
  payload->assign(body.data(), body.size());
  pos_ += kFrameHeaderBytes + len;
  return Next::kFrame;
}

}  // namespace cqms
