#include "common/string_util.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdio>

namespace cqms {

namespace {

std::atomic<uint64_t> g_extract_words_calls{0};

char AsciiLower(char c) {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}
char AsciiUpper(char c) {
  return (c >= 'a' && c <= 'z') ? static_cast<char>(c - 'a' + 'A') : c;
}
}  // namespace

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), AsciiLower);
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), AsciiUpper);
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      parts.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return parts;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool StartsWithIgnoreCase(std::string_view s, std::string_view prefix) {
  if (s.size() < prefix.size()) return false;
  for (size_t i = 0; i < prefix.size(); ++i) {
    if (AsciiLower(s[i]) != AsciiLower(prefix[i])) return false;
  }
  return true;
}

bool ContainsIgnoreCase(std::string_view haystack, std::string_view needle) {
  if (needle.empty()) return true;
  if (haystack.size() < needle.size()) return false;
  for (size_t i = 0; i + needle.size() <= haystack.size(); ++i) {
    if (StartsWithIgnoreCase(haystack.substr(i), needle)) return true;
  }
  return false;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  return a.size() == b.size() && StartsWithIgnoreCase(a, b);
}

size_t EditDistance(std::string_view a, std::string_view b) {
  if (a.size() > b.size()) std::swap(a, b);
  // Single-row dynamic program: O(|a|) space.
  std::vector<size_t> row(a.size() + 1);
  for (size_t i = 0; i <= a.size(); ++i) row[i] = i;
  for (size_t j = 1; j <= b.size(); ++j) {
    size_t prev_diag = row[0];
    row[0] = j;
    for (size_t i = 1; i <= a.size(); ++i) {
      size_t insert_cost = row[i - 1] + 1;
      size_t delete_cost = row[i] + 1;
      size_t subst_cost = prev_diag + (a[i - 1] == b[j - 1] ? 0 : 1);
      prev_diag = row[i];
      row[i] = std::min({insert_cost, delete_cost, subst_cost});
    }
  }
  return row[a.size()];
}

std::vector<std::string> ExtractWords(std::string_view text) {
  ++g_extract_words_calls;
  std::vector<std::string> words;
  std::string current;
  for (char c : text) {
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
      current.push_back(AsciiLower(c));
    } else if (!current.empty()) {
      words.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) words.push_back(std::move(current));
  return words;
}

uint64_t ExtractWordsCallCount() { return g_extract_words_calls.load(); }

std::string SqlEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '\'') out += "''";
    else out.push_back(c);
  }
  return out;
}

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace cqms
