#include "common/rng.h"

#include <cmath>

namespace cqms {

size_t Rng::Zipf(size_t n, double s) {
  assert(n > 0);
  // Linear inverse-CDF scan; n is small (tables, users, templates).
  double total = 0;
  for (size_t i = 1; i <= n; ++i) total += 1.0 / std::pow(static_cast<double>(i), s);
  double target = UniformDouble() * total;
  double acc = 0;
  for (size_t i = 1; i <= n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i), s);
    if (acc >= target) return i - 1;
  }
  return n - 1;
}

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  double total = 0;
  for (double w : weights) total += w;
  assert(total > 0);
  double target = UniformDouble() * total;
  double acc = 0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (acc >= target) return i;
  }
  return weights.size() - 1;
}

}  // namespace cqms
