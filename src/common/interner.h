#ifndef CQMS_COMMON_INTERNER_H_
#define CQMS_COMMON_INTERNER_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace cqms {

/// Dense id assigned to an interned string. Ids are assigned in first-seen
/// order starting at 0 and never reused, so they are stable for the
/// lifetime of the interner and safe to store in sorted signature vectors.
using Symbol = uint32_t;

/// Sentinel returned by Find() for strings never interned.
constexpr Symbol kInvalidSymbol = 0xFFFFFFFFu;

/// A bijective string <-> Symbol table. Interning happens once per logged
/// query (at profile/append time); the hot similarity paths then compare
/// Symbols instead of strings, so a pairwise comparison allocates nothing.
///
/// Thread-safe: all methods take an internal mutex. Interned strings are
/// stored in a deque so string_views handed out by NameOf() stay valid
/// across further interning.
class StringInterner {
 public:
  StringInterner() = default;
  StringInterner(const StringInterner&) = delete;
  StringInterner& operator=(const StringInterner&) = delete;

  /// Returns the id of `s`, interning it first if unseen.
  Symbol Intern(std::string_view s);

  /// Returns the id of `s` or kInvalidSymbol when it was never interned.
  /// Never inserts — use for lookups driven by untrusted input (e.g.
  /// keyword search) so probes cannot grow the table.
  Symbol Find(std::string_view s) const;

  /// The string behind an id; empty view for unknown ids.
  std::string_view NameOf(Symbol id) const;

  size_t size() const;

  /// Copies the table in id order (index == Symbol) under one lock —
  /// the snapshot writer's bulk export. Per-symbol NameOf() calls would
  /// pay one mutex round-trip each.
  std::vector<std::string> ExportTable() const;

  /// Interns every entry of `names` under one lock acquisition and
  /// returns the ids in input order — the snapshot loader's remap path.
  /// Equivalent to calling Intern() per name, minus the per-call lock.
  std::vector<Symbol> BulkIntern(const std::vector<std::string>& names);

 private:
  Symbol InternLocked(std::string_view s);

  mutable std::mutex mu_;
  std::deque<std::string> strings_;
  /// Keys are views into strings_ (stable because deque never relocates).
  std::unordered_map<std::string_view, Symbol> ids_;
};

/// The process-wide interner shared by every QueryStore and signature.
/// Sharing one table means signatures from different stores (and transient
/// probe records) are directly comparable.
StringInterner& GlobalInterner();

}  // namespace cqms

#endif  // CQMS_COMMON_INTERNER_H_
