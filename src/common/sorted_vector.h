#ifndef CQMS_COMMON_SORTED_VECTOR_H_
#define CQMS_COMMON_SORTED_VECTOR_H_

#include <algorithm>
#include <vector>

namespace cqms {

/// Sorts and deduplicates in place — turns an arbitrary vector into the
/// sorted-set representation the similarity signatures and skeleton
/// overlap checks compare with linear merges.
template <typename T>
void SortUnique(std::vector<T>* v) {
  std::sort(v->begin(), v->end());
  v->erase(std::unique(v->begin(), v->end()), v->end());
}

/// Inserts `v` into a sorted, duplicate-free vector, keeping it so.
/// Appends in O(1) when `v` is the largest — the common case for
/// posting lists keyed by monotonically assigned ids — and falls back
/// to a binary-search insert otherwise (e.g. re-indexing a rewritten
/// record mid-log).
template <typename T>
void InsertSorted(std::vector<T>* vec, const T& v) {
  if (vec->empty() || vec->back() < v) {
    vec->push_back(v);
    return;
  }
  auto it = std::lower_bound(vec->begin(), vec->end(), v);
  if (it == vec->end() || *it != v) vec->insert(it, v);
}

/// Removes `v` from a sorted vector if present.
template <typename T>
void EraseSorted(std::vector<T>* vec, const T& v) {
  auto it = std::lower_bound(vec->begin(), vec->end(), v);
  if (it != vec->end() && *it == v) vec->erase(it);
}

/// True when two sorted vectors share at least one element.
template <typename T>
bool SortedIntersects(const std::vector<T>& a, const std::vector<T>& b) {
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) return true;
    if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return false;
}

}  // namespace cqms

#endif  // CQMS_COMMON_SORTED_VECTOR_H_
