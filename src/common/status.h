#ifndef CQMS_COMMON_STATUS_H_
#define CQMS_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace cqms {

/// Error categories used across the CQMS code base.
///
/// The library does not use C++ exceptions; every fallible operation
/// returns either a `Status` or a `Result<T>` (see result.h). This mirrors
/// the error-handling idiom of production database systems.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,   ///< Caller passed a malformed argument.
  kNotFound = 2,          ///< A referenced entity does not exist.
  kAlreadyExists = 3,     ///< Uniqueness constraint would be violated.
  kParseError = 4,        ///< SQL text could not be parsed.
  kBindError = 5,         ///< Names could not be resolved against a catalog.
  kExecutionError = 6,    ///< Runtime failure while evaluating a query.
  kPermissionDenied = 7,  ///< Access-control rules forbid the operation.
  kUnsupported = 8,       ///< Feature intentionally not implemented.
  kIoError = 9,           ///< Persistence layer failure.
  kInternal = 10,         ///< Invariant violation; indicates a bug.
  kCorruption = 11,       ///< Stored bytes fail validation (CRC, framing).
  kResourceExhausted = 12,  ///< Out of a finite resource (disk space).
  kDeadlineExceeded = 13,   ///< Operation did not complete within its deadline.
  kUnavailable = 14,        ///< Service is shutting down or not accepting work.
  /// Mutation sent to a read replica. The message carries the primary's
  /// address as "leader=host:port" so failover clients can redirect.
  kNotPrimary = 15,
};

/// Returns a stable human-readable name for `code` (e.g. "NotFound").
const char* StatusCodeToString(StatusCode code);

/// Value type describing the outcome of an operation.
///
/// `Status` is cheap to copy in the OK case (empty message) and carries a
/// diagnostic message otherwise. Use the factory helpers
/// (`Status::InvalidArgument(...)` etc.) to construct errors.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with an explicit code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status BindError(std::string msg) {
    return Status(StatusCode::kBindError, std::move(msg));
  }
  static Status ExecutionError(std::string msg) {
    return Status(StatusCode::kExecutionError, std::move(msg));
  }
  static Status PermissionDenied(std::string msg) {
    return Status(StatusCode::kPermissionDenied, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status NotPrimary(std::string msg) {
    return Status(StatusCode::kNotPrimary, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace cqms

/// Propagates a non-OK `Status` from the current function.
#define CQMS_RETURN_IF_ERROR(expr)                \
  do {                                            \
    ::cqms::Status _cqms_status = (expr);         \
    if (!_cqms_status.ok()) return _cqms_status;  \
  } while (false)

#endif  // CQMS_COMMON_STATUS_H_
