#ifndef CQMS_COMMON_FRAME_CODEC_H_
#define CQMS_COMMON_FRAME_CODEC_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace cqms {

/// Byte stream framing shared by the network protocol (docs/server.md)
/// and reusable by any future stream transport (WAL shipping). One frame
/// is
///
///   fixed32 payload length (little-endian)
///   fixed32 CRC-32 of the payload (the WAL's Crc32)
///   payload bytes
///
/// — the same length+CRC discipline the WAL uses per record, so torn or
/// corrupted bytes are detected before a single payload byte is decoded.
constexpr size_t kFrameHeaderBytes = 8;

/// Frames larger than this are refused by default on both ends; the
/// server's --max-frame-bytes lowers it further.
constexpr size_t kDefaultMaxFrameBytes = 8u << 20;

/// Appends one encoded frame carrying `payload` to `out`.
void AppendFrame(std::string* out, std::string_view payload);

/// Incremental frame extractor over an arbitrarily chunked byte stream
/// (socket reads). Feed() buffers bytes; Next() yields complete payloads
/// in order. Any framing violation — a length beyond the limit or a CRC
/// mismatch — latches a permanent error: stream synchronization is lost,
/// so the connection must be dropped (after an optional typed error
/// frame; the bytes already buffered cannot be trusted).
class FrameDecoder {
 public:
  explicit FrameDecoder(size_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  /// Buffers `n` more stream bytes. No-op once failed.
  void Feed(const char* data, size_t n);

  enum class Next {
    kFrame,     ///< `*payload` holds the next complete payload.
    kNeedMore,  ///< No complete frame buffered; Feed() more bytes.
    kError,     ///< Framing violated; error() says how. Terminal.
  };

  /// Extracts the next complete frame's payload into `*payload`.
  Next Poll(std::string* payload);

  const Status& error() const { return error_; }
  bool failed() const { return !error_.ok(); }

  /// Bytes currently buffered and not yet returned (backpressure metric).
  size_t buffered_bytes() const { return buf_.size() - pos_; }

 private:
  size_t max_frame_bytes_;
  std::string buf_;
  size_t pos_ = 0;
  Status error_;
};

}  // namespace cqms

#endif  // CQMS_COMMON_FRAME_CODEC_H_
