#ifndef CQMS_COMMON_RNG_H_
#define CQMS_COMMON_RNG_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace cqms {

/// Deterministic pseudo-random generator (xoshiro256**).
///
/// Workload generation, sampling and clustering all draw from this
/// generator so that every experiment in the repository is exactly
/// reproducible from its seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit value.
  uint64_t Next() {
    uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). `bound` must be positive.
  uint64_t Uniform(uint64_t bound) {
    assert(bound > 0);
    return Next() % bound;
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli draw with probability `p` of true.
  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// Zipfian rank in [0, n) with exponent `s`; rank 0 is most popular.
  /// Computed by inverse-CDF over precomputable weights — fine for the
  /// small n used by workload generation.
  size_t Zipf(size_t n, double s);

  /// Samples an index proportionally to `weights` (all non-negative, at
  /// least one positive).
  size_t WeightedIndex(const std::vector<double>& weights);

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t state_[4];
};

}  // namespace cqms

#endif  // CQMS_COMMON_RNG_H_
