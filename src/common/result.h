#ifndef CQMS_COMMON_RESULT_H_
#define CQMS_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace cqms {

/// Holds either a value of type `T` or an error `Status`.
///
/// This is the return type of every fallible operation that produces a
/// value. Typical use:
///
/// ```
/// Result<int> r = ParseCount(text);
/// if (!r.ok()) return r.status();
/// int n = r.value();
/// ```
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from a non-OK status (failure).
  Result(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Accesses the contained value. Must only be called when `ok()`.
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` when this result holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace cqms

/// Evaluates `rexpr` (a Result<T>), propagating the error or binding the
/// value to `lhs`.
#define CQMS_ASSIGN_OR_RETURN(lhs, rexpr)                        \
  CQMS_ASSIGN_OR_RETURN_IMPL_(                                   \
      CQMS_RESULT_CONCAT_(_cqms_result, __LINE__), lhs, rexpr)

#define CQMS_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value()

#define CQMS_RESULT_CONCAT_INNER_(a, b) a##b
#define CQMS_RESULT_CONCAT_(a, b) CQMS_RESULT_CONCAT_INNER_(a, b)

#endif  // CQMS_COMMON_RESULT_H_
