#ifndef CQMS_COMMON_CLOCK_H_
#define CQMS_COMMON_CLOCK_H_

#include <chrono>
#include <cstdint>

namespace cqms {

/// Microseconds since an arbitrary epoch. All CQMS timestamps (query
/// submission times, schema-change times, session gaps) use this unit.
using Micros = int64_t;

constexpr Micros kMicrosPerSecond = 1'000'000;
constexpr Micros kMicrosPerMinute = 60 * kMicrosPerSecond;

/// Clock interface so tests and the workload generator can drive
/// deterministic logical time while production code uses the wall clock.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual Micros Now() const = 0;
};

/// Wall-clock backed implementation. Uses system_clock (microseconds
/// since the Unix epoch), NOT steady_clock: these timestamps are
/// persisted into snapshots and the WAL, so they must stay comparable
/// across process restarts and host reboots. steady_clock counts from
/// an arbitrary per-boot epoch — restored timestamps would compare
/// wildly against fresh ones, silently corrupting sessionization gaps,
/// popularity decay and log-order ranking after a reboot. Elapsed-time
/// measurement (which must never jump on NTP steps) stays on
/// steady_clock via WallTimer.
class SystemClock : public Clock {
 public:
  Micros Now() const override {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::system_clock::now().time_since_epoch())
        .count();
  }
};

/// Manually advanced clock for deterministic tests and simulations.
class SimulatedClock : public Clock {
 public:
  explicit SimulatedClock(Micros start = 0) : now_(start) {}
  Micros Now() const override { return now_; }
  void Advance(Micros delta) { now_ += delta; }
  void Set(Micros t) { now_ = t; }

 private:
  Micros now_;
};

/// Measures elapsed wall time in microseconds; used by the Query Profiler
/// to record query execution times.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  void Restart() { start_ = std::chrono::steady_clock::now(); }
  Micros ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace cqms

#endif  // CQMS_COMMON_CLOCK_H_
