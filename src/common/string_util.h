#ifndef CQMS_COMMON_STRING_UTIL_H_
#define CQMS_COMMON_STRING_UTIL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace cqms {

/// Returns `s` lower-cased (ASCII only; SQL identifiers are ASCII here).
std::string ToLower(std::string_view s);

/// Returns `s` upper-cased (ASCII only).
std::string ToUpper(std::string_view s);

/// Strips leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// True if `s` starts with `prefix`, ignoring ASCII case.
bool StartsWithIgnoreCase(std::string_view s, std::string_view prefix);

/// True if `haystack` contains `needle`, ignoring ASCII case.
bool ContainsIgnoreCase(std::string_view haystack, std::string_view needle);

/// Case-insensitive string equality (ASCII).
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Levenshtein edit distance between `a` and `b` (unit costs).
/// Used by the correction engine's identifier spell checker.
size_t EditDistance(std::string_view a, std::string_view b);

/// Tokenizes free text into lower-cased alphanumeric words.
/// Used by the keyword search index.
std::vector<std::string> ExtractWords(std::string_view text);

/// Process-wide count of ExtractWords() invocations. The binary-snapshot
/// restore promises to never re-tokenize logged text; the durability
/// tests assert it by diffing this counter across a load.
uint64_t ExtractWordsCallCount();

/// Escapes a string for inclusion in a single-quoted SQL literal
/// (doubles embedded quotes).
std::string SqlEscape(std::string_view s);

/// Formats a double with up to 6 significant digits, trimming trailing
/// zeros, so printed query constants are stable across platforms.
std::string FormatDouble(double v);

}  // namespace cqms

#endif  // CQMS_COMMON_STRING_UTIL_H_
