#include "common/binary_codec.h"

#include <array>
#include <cstring>

namespace cqms {

namespace {

/// Slicing-by-8 tables: table[0] is the classic byte-at-a-time table,
/// table[k][b] the CRC of byte b followed by k zero bytes. Processing 8
/// bytes per step runs several GB/s — snapshots CRC whole multi-MB
/// sections, so the byte-at-a-time loop would dominate load time.
using CrcTables = std::array<std::array<uint32_t, 256>, 8>;

CrcTables BuildCrcTables() {
  CrcTables t{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    t[0][i] = c;
  }
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = t[0][i];
    for (size_t k = 1; k < 8; ++k) {
      c = t[0][c & 0xFFu] ^ (c >> 8);
      t[k][i] = c;
    }
  }
  return t;
}

}  // namespace

uint32_t Crc32(std::string_view data) {
  static const CrcTables t = BuildCrcTables();
  uint32_t crc = 0xFFFFFFFFu;
  const unsigned char* p = reinterpret_cast<const unsigned char*>(data.data());
  size_t n = data.size();
  while (n >= 8) {
    uint32_t lo;
    uint32_t hi;
    std::memcpy(&lo, p, 4);
    std::memcpy(&hi, p + 4, 4);
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ != __ORDER_LITTLE_ENDIAN__
    // The slicing trick indexes bytes in little-endian order.
    lo = __builtin_bswap32(lo);
    hi = __builtin_bswap32(hi);
#endif
    lo ^= crc;
    crc = t[7][lo & 0xFFu] ^ t[6][(lo >> 8) & 0xFFu] ^
          t[5][(lo >> 16) & 0xFFu] ^ t[4][lo >> 24] ^ t[3][hi & 0xFFu] ^
          t[2][(hi >> 8) & 0xFFu] ^ t[1][(hi >> 16) & 0xFFu] ^ t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    crc = t[0][(crc ^ *p++) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

void BinaryWriter::PutVarint(uint64_t v) {
  while (v >= 0x80) {
    out_.push_back(static_cast<char>(v | 0x80));
    v >>= 7;
  }
  out_.push_back(static_cast<char>(v));
}

void BinaryWriter::PutZigzag(int64_t v) {
  PutVarint((static_cast<uint64_t>(v) << 1) ^
            static_cast<uint64_t>(v >> 63));
}

// Fixed-width values are little-endian on disk. On LE hosts (every
// supported target) that is a straight memcpy; the shift forms below
// keep BE hosts correct.
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
#define CQMS_LITTLE_ENDIAN 1
#else
#define CQMS_LITTLE_ENDIAN 0
#endif

void BinaryWriter::PutFixed32(uint32_t v) {
#if CQMS_LITTLE_ENDIAN
  out_.append(reinterpret_cast<const char*>(&v), sizeof(v));
#else
  for (int i = 0; i < 4; ++i) out_.push_back(static_cast<char>(v >> (8 * i)));
#endif
}

void BinaryWriter::PutFixed64(uint64_t v) {
#if CQMS_LITTLE_ENDIAN
  out_.append(reinterpret_cast<const char*>(&v), sizeof(v));
#else
  for (int i = 0; i < 8; ++i) out_.push_back(static_cast<char>(v >> (8 * i)));
#endif
}

void BinaryWriter::PutDouble(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutFixed64(bits);
}

void BinaryWriter::PutString(std::string_view s) {
  PutVarint(s.size());
  out_.append(s.data(), s.size());
}

void BinaryWriter::PutBytes(const void* data, size_t size) {
  out_.append(static_cast<const char*>(data), size);
}

void PutDeltaU64s(BinaryWriter* w, const std::vector<uint64_t>& values) {
  w->PutVarint(values.size());
  uint64_t prev = 0;
  for (uint64_t v : values) {
    w->PutVarint(v - prev);
    prev = v;
  }
}

std::vector<uint64_t> GetDeltaU64s(BinaryReader* r) {
  uint64_t n = r->GetVarint();
  if (r->failed() || n > r->remaining()) {  // >= 1 byte per element
    r->Invalidate();
    return {};
  }
  std::vector<uint64_t> out;
  out.reserve(n);
  uint64_t prev = 0;
  for (uint64_t i = 0; i < n; ++i) {
    prev += r->GetVarint();
    out.push_back(prev);
  }
  return out;
}

uint64_t BinaryReader::GetVarintSlow() {
  uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    if (!Need(1)) return 0;
    uint8_t byte = static_cast<uint8_t>(data_[pos_++]);
    v |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return v;
  }
  failed_ = true;  // > 10 continuation bytes: not a valid varint64.
  return 0;
}

uint32_t BinaryReader::GetFixed32() {
  if (!Need(4)) return 0;
  uint32_t v;
#if CQMS_LITTLE_ENDIAN
  std::memcpy(&v, data_.data() + pos_, sizeof(v));
  pos_ += 4;
#else
  v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_++])) << (8 * i);
  }
#endif
  return v;
}

uint64_t BinaryReader::GetFixed64() {
  if (!Need(8)) return 0;
  uint64_t v;
#if CQMS_LITTLE_ENDIAN
  std::memcpy(&v, data_.data() + pos_, sizeof(v));
  pos_ += 8;
#else
  v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_++])) << (8 * i);
  }
#endif
  return v;
}

double BinaryReader::GetDouble() {
  uint64_t bits = GetFixed64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

}  // namespace cqms
