#include "common/interner.h"

namespace cqms {

Symbol StringInterner::InternLocked(std::string_view s) {
  auto it = ids_.find(s);
  if (it != ids_.end()) return it->second;
  strings_.emplace_back(s);
  Symbol id = static_cast<Symbol>(strings_.size() - 1);
  ids_.emplace(std::string_view(strings_.back()), id);
  return id;
}

Symbol StringInterner::Intern(std::string_view s) {
  std::lock_guard<std::mutex> lock(mu_);
  return InternLocked(s);
}

Symbol StringInterner::Find(std::string_view s) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = ids_.find(s);
  return it == ids_.end() ? kInvalidSymbol : it->second;
}

std::string_view StringInterner::NameOf(Symbol id) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (id >= strings_.size()) return {};
  return strings_[id];
}

size_t StringInterner::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return strings_.size();
}

std::vector<std::string> StringInterner::ExportTable() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<std::string>(strings_.begin(), strings_.end());
}

std::vector<Symbol> StringInterner::BulkIntern(
    const std::vector<std::string>& names) {
  std::vector<Symbol> ids;
  ids.reserve(names.size());
  std::lock_guard<std::mutex> lock(mu_);
  for (const std::string& name : names) ids.push_back(InternLocked(name));
  return ids;
}

StringInterner& GlobalInterner() {
  static StringInterner* interner = new StringInterner();
  return *interner;
}

}  // namespace cqms
