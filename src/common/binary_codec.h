#ifndef CQMS_COMMON_BINARY_CODEC_H_
#define CQMS_COMMON_BINARY_CODEC_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

namespace cqms {

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) of `data`. The durability
/// layer frames every snapshot section and WAL record with it so torn or
/// bit-rotted bytes are detected before they reach a store.
uint32_t Crc32(std::string_view data);

class BinaryWriter;
class BinaryReader;

/// Delta-varint encoding of a sorted u64 vector (signature output-row
/// hashes): varint count, then per element the varint delta from its
/// predecessor. Shared by the snapshot and WAL codecs.
void PutDeltaU64s(BinaryWriter* w, const std::vector<uint64_t>& values);
/// Inverse of PutDeltaU64s; latches the reader's failure bit (and
/// returns empty) on a count that cannot fit the remaining bytes.
std::vector<uint64_t> GetDeltaU64s(BinaryReader* r);

/// Append-only encoder for the binary snapshot / WAL payloads.
///
/// Integers use LEB128 varints (zigzag for signed) — query ids,
/// timestamps and section lengths are small in practice, so the on-disk
/// form stays compact without a compression pass. Fixed-width values
/// (doubles, MinHash slots) are little-endian byte dumps: they carry
/// full-range entropy, so a varint would only inflate them.
class BinaryWriter {
 public:
  void PutU8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void PutVarint(uint64_t v);
  void PutZigzag(int64_t v);
  void PutFixed32(uint32_t v);
  void PutFixed64(uint64_t v);
  void PutDouble(double v);
  /// Varint length prefix + raw bytes.
  void PutString(std::string_view s);
  void PutBytes(const void* data, size_t size);

  const std::string& data() const { return out_; }
  std::string Take() { return std::move(out_); }
  size_t size() const { return out_.size(); }
  void Clear() { out_.clear(); }

 private:
  std::string out_;
};

/// Bounds-checked cursor over an encoded payload. Every read past the
/// end (or a malformed varint) latches `failed()` and returns zeros /
/// empty views instead of touching out-of-range bytes, so decoders can
/// run a whole record and check for corruption once at the end.
class BinaryReader {
 public:
  explicit BinaryReader(std::string_view data) : data_(data) {}

  // The hot accessors are inline: a bulk snapshot decode issues tens of
  // varint/byte reads per record, millions per load.
  uint8_t GetU8() {
    if (!Need(1)) return 0;
    return static_cast<uint8_t>(data_[pos_++]);
  }

  uint64_t GetVarint() {
    // Fast path: single-byte varint (the overwhelming majority — section
    // counts, deltas, small ids).
    if (!failed_ && pos_ < data_.size()) {
      uint8_t byte = static_cast<uint8_t>(data_[pos_]);
      if ((byte & 0x80) == 0) {
        ++pos_;
        return byte;
      }
    }
    return GetVarintSlow();
  }

  int64_t GetZigzag() {
    uint64_t v = GetVarint();
    return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
  }

  uint32_t GetFixed32();
  uint64_t GetFixed64();
  double GetDouble();

  /// Reads a varint length prefix + that many raw bytes. The view
  /// aliases the underlying buffer.
  std::string_view GetStringView() {
    uint64_t len = GetVarint();
    if (!Need(len)) return {};
    std::string_view s = data_.substr(pos_, len);
    pos_ += len;
    return s;
  }
  std::string GetString() { return std::string(GetStringView()); }

  /// Copies `n` raw bytes into `dst` (fixed-width blobs, e.g. sketch
  /// slot arrays). Zero-fills nothing on failure — check failed().
  void GetRaw(void* dst, size_t n) {
    if (!Need(n)) return;
    std::memcpy(dst, data_.data() + pos_, n);
    pos_ += n;
  }

  bool failed() const { return failed_; }
  /// Latches the failure bit from outside — for decoders that reject a
  /// value (e.g. an element count exceeding the remaining bytes) and
  /// want every subsequent read, and the final AtEnd() check, to fail.
  void Invalidate() { failed_ = true; }
  /// True when the cursor consumed every byte without failing.
  bool AtEnd() const { return !failed_ && pos_ == data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  bool Need(size_t n) {
    if (failed_ || data_.size() - pos_ < n) {
      failed_ = true;
      return false;
    }
    return true;
  }

  uint64_t GetVarintSlow();

  std::string_view data_;
  size_t pos_ = 0;
  bool failed_ = false;
};

}  // namespace cqms

#endif  // CQMS_COMMON_BINARY_CODEC_H_
