#ifndef CQMS_COMMON_HASH_H_
#define CQMS_COMMON_HASH_H_

#include <cstdint>
#include <string_view>

namespace cqms {

/// 64-bit FNV-1a hash of a byte string. Deterministic across platforms,
/// which matters because query fingerprints are persisted.
inline uint64_t Fnv1a64(std::string_view data, uint64_t seed = 0xcbf29ce484222325ULL) {
  uint64_t h = seed;
  for (char c : data) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Mixes `v` into an accumulated hash (boost-style combine with a 64-bit
/// golden-ratio constant).
inline uint64_t HashCombine(uint64_t h, uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 12) + (h >> 4);
  return h;
}

/// Finalizer from SplitMix64; spreads low-entropy inputs across 64 bits.
inline uint64_t HashMix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace cqms

#endif  // CQMS_COMMON_HASH_H_
