#include "maintain/query_repair.h"

#include <map>
#include <set>
#include <utility>

#include "common/string_util.h"
#include "sql/printer.h"

namespace cqms::maintain {

namespace {

/// Folds rename chains: applying `Add(a, b)` then `Add(b, c)` makes
/// `Resolve(a)` return `c`.
class RenameMap {
 public:
  void Add(const std::string& from, const std::string& to) {
    for (auto& [key, value] : map_) {
      if (value == from) value = to;
    }
    if (map_.count(from) == 0) map_[from] = to;
  }

  std::string Resolve(const std::string& name) const {
    auto it = map_.find(name);
    return it == map_.end() ? name : it->second;
  }

  bool empty() const { return map_.empty(); }

 private:
  std::map<std::string, std::string> map_;
};

struct RenamePlan {
  RenameMap tables;
  /// (final table name, old column) -> new column, chains folded.
  std::map<std::pair<std::string, std::string>, std::string> columns;

  std::string ResolveColumn(const std::string& final_table,
                            const std::string& column) const {
    auto it = columns.find({final_table, column});
    return it == columns.end() ? column : it->second;
  }
};

RenamePlan BuildRenamePlan(const std::vector<db::SchemaChange>& changes) {
  RenamePlan plan;
  // First fold all table renames so column events can be normalized to
  // final table names as we replay.
  for (const db::SchemaChange& c : changes) {
    if (c.kind == db::SchemaChangeKind::kRenameTable) {
      plan.tables.Add(c.table, c.new_name);
    }
  }
  for (const db::SchemaChange& c : changes) {
    if (c.kind != db::SchemaChangeKind::kRenameColumn) continue;
    std::string final_table = plan.tables.Resolve(c.table);
    // Fold column chains on the same table.
    for (auto& [key, value] : plan.columns) {
      if (key.first == final_table && value == c.column) value = c.new_name;
    }
    std::pair<std::string, std::string> key{final_table, c.column};
    if (plan.columns.count(key) == 0) plan.columns[key] = c.new_name;
  }
  return plan;
}

/// Rewrites one statement scope (and, recursively, nested scopes).
void RewriteScope(sql::SelectStatement* stmt, const RenamePlan& plan,
                  std::vector<std::string>* actions) {
  // Table refs first; build the alias/table picture of this scope.
  std::set<std::string> aliases;
  std::set<std::string> scope_tables;  // final names
  for (sql::TableRef& tr : stmt->from) {
    std::string old_name = ToLower(tr.table);
    std::string new_name = plan.tables.Resolve(old_name);
    if (new_name != old_name) {
      actions->push_back("renamed table " + old_name + " -> " + new_name);
      tr.table = new_name;
    }
    if (!tr.alias.empty()) aliases.insert(ToLower(tr.alias));
    scope_tables.insert(ToLower(tr.EffectiveName().empty() ? new_name
                                                           : tr.EffectiveName()));
    scope_tables.insert(new_name);
  }

  // Map a column qualifier (alias or table name, as written) to the
  // final table name it denotes, or "" when it is an alias.
  auto qualifier_final_table = [&](const std::string& qualifier,
                                   const sql::SelectStatement& s) -> std::string {
    std::string q = ToLower(qualifier);
    for (const sql::TableRef& tr : s.from) {
      if (!tr.alias.empty() && ToLower(tr.alias) == q) return ToLower(tr.table);
    }
    // Not an alias: treat as a table name; resolve renames.
    return plan.tables.Resolve(q);
  };

  auto rewrite_expr = [&](sql::Expr* root) {
    sql::WalkExpr(
        root,
        [&](sql::Expr* e) {
          if (e->kind != sql::ExprKind::kColumnRef &&
              e->kind != sql::ExprKind::kStar) {
            return;
          }
          std::string column = ToLower(e->column);
          if (!e->table.empty()) {
            std::string q = ToLower(e->table);
            bool is_alias = aliases.count(q) > 0;
            std::string final_table =
                is_alias ? qualifier_final_table(q, *stmt) : plan.tables.Resolve(q);
            if (!is_alias && final_table != q) {
              actions->push_back("rewrote qualifier " + q + " -> " + final_table);
              e->table = final_table;
            }
            if (e->kind == sql::ExprKind::kColumnRef) {
              std::string new_col = plan.ResolveColumn(final_table, column);
              if (new_col != column) {
                actions->push_back("renamed column " + final_table + "." + column +
                                   " -> " + new_col);
                e->column = new_col;
              }
            }
            return;
          }
          if (e->kind != sql::ExprKind::kColumnRef) return;
          // Unqualified: apply a rename when exactly one in-scope table
          // renames this column (conservative heuristic).
          std::string unique_new;
          int hits = 0;
          for (const sql::TableRef& tr : stmt->from) {
            std::string final_table = ToLower(tr.table);
            std::string new_col = plan.ResolveColumn(final_table, column);
            if (new_col != column) {
              ++hits;
              unique_new = new_col;
            }
          }
          if (hits == 1) {
            actions->push_back("renamed column " + column + " -> " + unique_new);
            e->column = unique_new;
          }
        },
        /*enter_subqueries=*/false);
    // Nested scopes.
    sql::WalkExpr(
        root,
        [&](sql::Expr* e) {
          if (e->subquery) RewriteScope(e->subquery.get(), plan, actions);
        },
        /*enter_subqueries=*/false);
  };

  for (sql::SelectItem& item : stmt->select_items) {
    if (item.is_star && !item.star_table.empty()) {
      std::string q = ToLower(item.star_table);
      if (aliases.count(q) == 0) {
        std::string final_table = plan.tables.Resolve(q);
        if (final_table != q) item.star_table = final_table;
      }
    }
    if (item.expr) rewrite_expr(item.expr.get());
  }
  for (sql::TableRef& tr : stmt->from) {
    if (tr.join_condition) rewrite_expr(tr.join_condition.get());
  }
  if (stmt->where) rewrite_expr(stmt->where.get());
  for (auto& g : stmt->group_by) rewrite_expr(g.get());
  if (stmt->having) rewrite_expr(stmt->having.get());
  for (auto& o : stmt->order_by) {
    if (o.expr) rewrite_expr(o.expr.get());
  }
  if (stmt->union_next) RewriteScope(stmt->union_next.get(), plan, actions);
}

}  // namespace

RepairResult RepairStatement(const sql::SelectStatement& stmt,
                             const std::vector<db::SchemaChange>& changes,
                             const db::Database& database) {
  RepairResult result;

  // Already valid? Nothing to do.
  if (database.Validate(stmt).ok()) {
    result.repaired = false;
    result.failure_reason = "statement is already valid";
    return result;
  }

  RenamePlan plan = BuildRenamePlan(changes);
  auto clone = stmt.Clone();
  RewriteScope(clone.get(), plan, &result.actions);

  Status valid = database.Validate(*clone);
  if (!valid.ok()) {
    result.repaired = false;
    result.actions.clear();
    result.failure_reason = "not repairable by renames: " + valid.ToString();
    return result;
  }
  result.repaired = true;
  result.new_text = sql::PrintStatement(*clone);
  return result;
}

}  // namespace cqms::maintain
