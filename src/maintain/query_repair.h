#ifndef CQMS_MAINTAIN_QUERY_REPAIR_H_
#define CQMS_MAINTAIN_QUERY_REPAIR_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "db/database.h"
#include "sql/ast.h"

namespace cqms::maintain {

/// Outcome of an automatic repair attempt.
struct RepairResult {
  bool repaired = false;
  std::string new_text;               ///< Valid only when repaired.
  std::vector<std::string> actions;   ///< Human-readable repair steps.
  std::string failure_reason;         ///< Why repair was impossible.
};

/// Attempts to repair a statement broken by schema evolution (§4.4:
/// "another option is to systematically repair the queries by applying
/// appropriate changes"). Handles table and column *renames* by
/// rewriting references through the catalog change log; *drops* are
/// declared irreparable (removing a referenced table or column changes
/// query semantics, which the paper leaves as an open question).
///
/// The result, when `repaired`, re-validates cleanly against `database`.
RepairResult RepairStatement(const sql::SelectStatement& stmt,
                             const std::vector<db::SchemaChange>& changes,
                             const db::Database& database);

}  // namespace cqms::maintain

#endif  // CQMS_MAINTAIN_QUERY_REPAIR_H_
