#ifndef CQMS_MAINTAIN_QUALITY_H_
#define CQMS_MAINTAIN_QUALITY_H_

#include "storage/query_store.h"

namespace cqms::maintain {

/// Weights of the query-quality measure (§4.4: "quality can be defined in
/// terms of query efficiency, query simplicity, source tables' quality,
/// etc."). Each component is normalized to [0,1]; the score is the
/// weighted mean, zeroed for broken/deleted queries.
struct QualityWeights {
  double validity = 0.35;    ///< Succeeded and not schema-broken.
  double efficiency = 0.25;  ///< Faster relative to the log's distribution.
  double simplicity = 0.15;  ///< Fewer tables/predicates/nesting.
  double annotations = 0.10; ///< Documented queries are worth more.
  double popularity = 0.15;  ///< Re-issued queries are validated by use.
};

/// Computes the quality score of one record in the context of the store.
double ComputeQuality(const storage::QueryRecord& record,
                      const storage::QueryStore& store,
                      const QualityWeights& weights = {});

/// Recomputes and writes back quality for every record. Returns the
/// number of records updated.
size_t UpdateAllQuality(storage::QueryStore* store,
                        const QualityWeights& weights = {});

}  // namespace cqms::maintain

#endif  // CQMS_MAINTAIN_QUALITY_H_
