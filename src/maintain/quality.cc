#include "maintain/quality.h"

#include <algorithm>
#include <cmath>

namespace cqms::maintain {

double ComputeQuality(const storage::QueryRecord& record,
                      const storage::QueryStore& store,
                      const QualityWeights& weights) {
  if (record.HasFlag(storage::kFlagDeleted)) return 0;

  double validity = 1.0;
  if (!record.stats.succeeded || record.parse_failed()) validity = 0;
  if (record.HasFlag(storage::kFlagSchemaBroken)) validity = 0;
  if (record.HasFlag(storage::kFlagObsolete)) validity = 0;
  if (record.HasFlag(storage::kFlagStatsStale)) validity *= 0.8;

  // Efficiency: log-scaled execution time mapped to (0,1]; 1ms -> ~0.9,
  // 1s -> ~0.5, 100s -> ~0.2.
  double ms = static_cast<double>(record.stats.execution_micros) / 1000.0;
  double efficiency = 1.0 / (1.0 + 0.145 * std::log1p(ms));

  // Simplicity: component count mapped to (0,1].
  const auto& c = record.components;
  double complexity = static_cast<double>(
      c.tables.size() + c.predicates.size() + c.projections.size() +
      2 * c.max_nesting_depth);
  double simplicity = 1.0 / (1.0 + complexity / 8.0);

  double annotated = record.annotations.empty() ? 0.0 : 1.0;

  double popularity =
      std::log1p(static_cast<double>(store.PopularityOf(record.fingerprint))) /
      std::log1p(static_cast<double>(std::max<size_t>(2, store.size())));

  double total_weight = weights.validity + weights.efficiency +
                        weights.simplicity + weights.annotations +
                        weights.popularity;
  if (total_weight <= 0) return 0;
  double score = weights.validity * validity + weights.efficiency * efficiency +
                 weights.simplicity * simplicity + weights.annotations * annotated +
                 weights.popularity * popularity;
  return std::clamp(score / total_weight, 0.0, 1.0);
}

size_t UpdateAllQuality(storage::QueryStore* store, const QualityWeights& weights) {
  size_t updated = 0;
  for (const storage::QueryRecord& r : store->records()) {
    double q = ComputeQuality(r, *store, weights);
    if (store->SetQuality(r.id, q).ok()) ++updated;
  }
  return updated;
}

}  // namespace cqms::maintain
