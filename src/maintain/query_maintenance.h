#ifndef CQMS_MAINTAIN_QUERY_MAINTENANCE_H_
#define CQMS_MAINTAIN_QUERY_MAINTENANCE_H_

#include <map>
#include <string>
#include <vector>

#include "common/clock.h"
#include "db/stats.h"
#include "maintain/quality.h"
#include "maintain/query_repair.h"
#include "storage/durable_store.h"
#include "storage/query_store.h"

namespace cqms::maintain {

struct MaintenanceOptions {
  /// Try to repair broken queries automatically (renames only).
  bool auto_repair = true;
  /// Drift score (db::StatsDrift) above which a table's dependent
  /// queries get their stats flagged stale.
  double drift_threshold = 0.25;
  /// Max stale queries re-executed per maintenance run (§4.4 rejects
  /// "rerun all queries periodically" as overly expensive; this is the
  /// budget). Popular queries are refreshed first.
  size_t reexecute_budget = 50;
  /// Rewrite-churn hygiene: when the scoring-column arenas carry at
  /// least this many orphaned bytes (scoring().arena_garbage() grows
  /// with every repair rewrite and output refresh), RunAll compacts
  /// them. 0 disables compaction.
  size_t compact_arena_min_garbage = 1u << 20;
  QualityWeights quality;
};

/// Statistics of one maintenance run.
struct MaintenanceReport {
  size_t queries_checked = 0;
  size_t flagged_broken = 0;
  size_t repaired = 0;
  size_t unflagged = 0;           ///< Previously broken, now valid.
  size_t tables_drifted = 0;
  size_t stats_flagged_stale = 0;
  size_t stats_refreshed = 0;
  size_t quality_updated = 0;
  /// Scoring-column arena garbage observed at the end of the run (after
  /// any compaction), and the bytes a compaction reclaimed (0 when none
  /// ran — below threshold or disabled).
  size_t arena_garbage_bytes = 0;
  size_t arena_bytes_compacted = 0;
  /// True when the run ended by writing a durability checkpoint (the
  /// WAL had crossed its thresholds).
  bool checkpointed = false;
  /// Outcome of the end-of-run MaybeCheckpoint when durability is
  /// attached (OK also when no checkpoint was due). A persistent error
  /// here means snapshots are failing and the WAL is growing unbounded
  /// — operators must watch it, since a skipped checkpoint is
  /// otherwise indistinguishable from a below-threshold one.
  Status checkpoint_status;
  /// Durability health after the run (all zero/false without an
  /// attached DurableStore). `durable_read_only` means a WAL error is
  /// latched: mutations apply in memory but are not durable until a
  /// checkpoint succeeds — on a full disk (kResourceExhausted) this is
  /// the degraded-but-serving mode that heals itself once space
  /// returns. The failure streak and backoff counters expose the
  /// checkpoint retry pacing (capped exponential skip; see
  /// DurabilityOptions::checkpoint_backoff_cap).
  bool durable_read_only = false;
  uint32_t checkpoint_failure_streak = 0;
  uint64_t checkpoint_backoff_remaining = 0;
  uint64_t checkpoints_backed_off = 0;
  std::vector<storage::QueryId> broken_ids;
  std::vector<storage::QueryId> repaired_ids;
};

/// The background Query Maintenance component (Figure 4): keeps the Query
/// Storage consistent with the evolving database — schema validity
/// flags, automatic repair, statistics freshness under data drift, and
/// query-quality scores.
class QueryMaintenance {
 public:
  /// `database`, `store`, `clock` must outlive the maintenance object.
  QueryMaintenance(db::Database* database, storage::QueryStore* store,
                   const Clock* clock, MaintenanceOptions options = {});

  /// Re-validates queries affected by schema changes since the last run
  /// (first run checks everything), flagging broken queries and
  /// attempting repair when enabled.
  MaintenanceReport CheckSchemaValidity();

  /// Detects data drift per table (vs. the previous snapshot), flags
  /// dependent queries' stats stale, and re-executes up to the budget to
  /// refresh their runtime stats.
  MaintenanceReport RefreshStatistics();

  /// Recomputes quality scores for every record.
  size_t UpdateQuality();

  /// Full background cycle: schema check, stats refresh, quality update
  /// — then a durability checkpoint when one is attached and due, so
  /// the snapshot captures the refreshed stats and the WAL stays short.
  MaintenanceReport RunAll();

  /// Composes checkpointing with the background cycle: RunAll ends with
  /// `durable->MaybeCheckpoint()`. Null detaches; `durable` must
  /// outlive the maintenance object (the Cqms facade owns both).
  void AttachDurability(storage::DurableStore* durable) {
    durable_ = durable;
  }

 private:
  db::Database* database_;
  storage::QueryStore* store_;
  const Clock* clock_;
  MaintenanceOptions options_;
  storage::DurableStore* durable_ = nullptr;

  Micros last_schema_check_ = -1;  ///< -1 = never ran.
  std::map<std::string, db::TableStats> stats_snapshot_;
};

}  // namespace cqms::maintain

#endif  // CQMS_MAINTAIN_QUERY_MAINTENANCE_H_
