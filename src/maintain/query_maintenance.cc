#include "maintain/query_maintenance.h"

#include <algorithm>
#include <set>

#include "profiler/output_summarizer.h"
#include "storage/record_builder.h"

namespace cqms::maintain {

QueryMaintenance::QueryMaintenance(db::Database* database,
                                   storage::QueryStore* store, const Clock* clock,
                                   MaintenanceOptions options)
    : database_(database), store_(store), clock_(clock), options_(options) {}

MaintenanceReport QueryMaintenance::CheckSchemaValidity() {
  MaintenanceReport report;

  // Which queries to check: on the first run, everything; afterwards,
  // only queries whose input relations changed since the last check
  // (the paper's timestamp-comparison strategy, §4.4).
  std::set<storage::QueryId> to_check;
  std::vector<db::SchemaChange> relevant_changes;
  if (last_schema_check_ < 0) {
    for (const storage::QueryRecord& r : store_->records()) to_check.insert(r.id);
    relevant_changes = database_->catalog().changes();
  } else {
    relevant_changes = database_->catalog().ChangesSince(last_schema_check_);
    for (const db::SchemaChange& c : relevant_changes) {
      for (storage::QueryId id : store_->QueriesUsingTable(c.table)) {
        to_check.insert(id);
      }
      if (!c.new_name.empty()) {
        for (storage::QueryId id : store_->QueriesUsingTable(c.new_name)) {
          to_check.insert(id);
        }
      }
    }
  }
  last_schema_check_ = clock_->Now();

  for (storage::QueryId id : to_check) {
    storage::QueryRecord* r = store_->GetMutable(id);
    if (r == nullptr || r->parse_failed() || r->HasFlag(storage::kFlagDeleted)) {
      continue;
    }
    ++report.queries_checked;
    const sql::SelectStatement* ast = r->Ast();
    if (ast == nullptr) continue;
    Status valid = database_->Validate(*ast);
    if (valid.ok()) {
      if (r->HasFlag(storage::kFlagSchemaBroken)) {
        Status s = store_->ClearFlag(id, storage::kFlagSchemaBroken);
        (void)s;
        ++report.unflagged;
      }
      continue;
    }

    // Broken. Try repair first; flag if repair is impossible.
    if (options_.auto_repair) {
      RepairResult repair =
          RepairStatement(*ast, database_->catalog().changes(), *database_);
      if (repair.repaired) {
        Status s = store_->RewriteQueryText(id, repair.new_text);
        if (s.ok()) {
          s = store_->ClearFlag(id, storage::kFlagSchemaBroken);
          s = store_->AddFlag(id, storage::kFlagRepaired);
          ++report.repaired;
          report.repaired_ids.push_back(id);
          continue;
        }
      }
    }
    Status s = store_->AddFlag(id, storage::kFlagSchemaBroken);
    (void)s;
    ++report.flagged_broken;
    report.broken_ids.push_back(id);
  }
  return report;
}

MaintenanceReport QueryMaintenance::RefreshStatistics() {
  MaintenanceReport report;

  // Pass 1: drift detection per table against the previous snapshot.
  std::set<std::string> drifted;
  for (const std::string& table : database_->catalog().TableNames()) {
    const db::Table* t = database_->GetTable(table);
    if (t == nullptr) continue;
    db::TableStats current = db::ComputeTableStats(*t);
    auto it = stats_snapshot_.find(table);
    if (it != stats_snapshot_.end()) {
      double drift = db::StatsDrift(it->second, current);
      if (drift > options_.drift_threshold) {
        drifted.insert(table);
        ++report.tables_drifted;
      }
    }
    stats_snapshot_[table] = std::move(current);
  }

  // Pass 2: flag dependents of drifted tables.
  for (const std::string& table : drifted) {
    for (storage::QueryId id : store_->QueriesUsingTable(table)) {
      const storage::QueryRecord* r = store_->Get(id);
      if (r == nullptr || r->HasFlag(storage::kFlagDeleted) ||
          r->HasFlag(storage::kFlagStatsStale)) {
        continue;
      }
      Status s = store_->AddFlag(id, storage::kFlagStatsStale);
      (void)s;
      ++report.stats_flagged_stale;
    }
  }

  // Pass 3: refresh the most popular stale queries within the budget
  // ("update the statistics more frequently for popular or important
  // queries", §4.4).
  std::vector<std::pair<uint64_t, storage::QueryId>> stale;
  for (const storage::QueryRecord& r : store_->records()) {
    if (!r.HasFlag(storage::kFlagStatsStale) || r.parse_failed() ||
        r.HasFlag(storage::kFlagDeleted) || r.HasFlag(storage::kFlagSchemaBroken)) {
      continue;
    }
    stale.emplace_back(store_->PopularityOf(r.fingerprint), r.id);
  }
  std::sort(stale.begin(), stale.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  for (const auto& [pop, id] : stale) {
    if (report.stats_refreshed >= options_.reexecute_budget) break;
    storage::QueryRecord* r = store_->GetMutable(id);
    const sql::SelectStatement* ast = r->Ast();
    if (ast == nullptr) continue;
    WallTimer timer;
    auto exec = database_->Execute(*ast);
    if (!exec.ok()) {
      // Execution now fails (e.g. data-dependent): record and move on.
      r->stats.succeeded = false;
      r->stats.error = exec.status().ToString();
      Status s = store_->ClearFlag(id, storage::kFlagStatsStale);
      (void)s;
      ++report.stats_refreshed;
      continue;
    }
    r->stats.succeeded = true;
    r->stats.error.clear();
    r->stats.execution_micros = timer.ElapsedMicros();
    r->stats.result_rows = exec->rows.size();
    r->stats.rows_scanned = exec->rows_scanned;
    r->stats.plan = exec->plan;
    r->summary = profiler::SummarizeOutput(*exec, r->stats.execution_micros);
    // The cached signature hashes the output sample; rebuild that part —
    // through the store, so the columnar copy scoring reads stays in sync.
    Status sync = store_->SyncOutputSignature(id);
    (void)sync;
    Status s = store_->ClearFlag(id, storage::kFlagStatsStale);
    (void)s;
    ++report.stats_refreshed;
  }
  return report;
}

size_t QueryMaintenance::UpdateQuality() {
  return UpdateAllQuality(store_, options_.quality);
}

MaintenanceReport QueryMaintenance::RunAll() {
  // One republish for the whole cycle: a maintenance pass can touch
  // thousands of records (flags, quality, stats), and per-mutation
  // publication would copy the view state for each one.
  storage::QueryStore::ScopedPublishBatch batch(store_);
  MaintenanceReport report = CheckSchemaValidity();
  MaintenanceReport stats = RefreshStatistics();
  report.tables_drifted = stats.tables_drifted;
  report.stats_flagged_stale = stats.stats_flagged_stale;
  report.stats_refreshed = stats.stats_refreshed;
  report.quality_updated = UpdateQuality();
  // Arena hygiene rides the background cycle, like checkpointing: the
  // repair rewrites above are exactly what orphans arena runs.
  if (options_.compact_arena_min_garbage > 0 &&
      store_->scoring().arena_garbage() >= options_.compact_arena_min_garbage) {
    report.arena_bytes_compacted = store_->CompactScoringArenas();
  }
  report.arena_garbage_bytes = store_->scoring().arena_garbage();
  if (durable_ != nullptr) {
    report.checkpoint_status = durable_->MaybeCheckpoint(&report.checkpointed);
    report.durable_read_only = durable_->read_only();
    report.checkpoint_failure_streak = durable_->checkpoint_failure_streak();
    report.checkpoint_backoff_remaining =
        durable_->checkpoint_backoff_remaining();
    report.checkpoints_backed_off = durable_->checkpoints_backed_off();
  }
  return report;
}

}  // namespace cqms::maintain
