#ifndef CQMS_CLIENT_BROWSE_H_
#define CQMS_CLIENT_BROWSE_H_

#include <string>
#include <vector>

#include "miner/clustering.h"
#include "miner/sessionizer.h"
#include "storage/query_store.h"

namespace cqms::client {

/// Renders a comprehensible, session-grouped summary of the query log
/// for `viewer` (§2.2 Browse: "present query sessions instead of
/// individual queries"). Only visible queries appear; sessions whose
/// queries are all hidden are skipped.
std::string RenderLogSummary(const storage::QueryStore& store,
                             const std::vector<miner::Session>& sessions,
                             const std::string& viewer,
                             size_t max_sessions = 20);

/// Renders one query in full detail: text, runtime features, output
/// sample, annotations, flags.
std::string RenderQueryDetails(const storage::QueryStore& store,
                               storage::QueryId id);

/// Renders clusters of similar queries (dedup view, §4.3): per cluster
/// the medoid plus the member count.
std::string RenderClusters(const storage::QueryStore& store,
                           const miner::Clustering& clustering,
                           const std::string& viewer,
                           size_t max_clusters = 10);

}  // namespace cqms::client

#endif  // CQMS_CLIENT_BROWSE_H_
