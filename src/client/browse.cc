#include "client/browse.h"

#include "common/string_util.h"

namespace cqms::client {

namespace {

std::string Truncate(const std::string& s, size_t width) {
  if (s.size() <= width) return s;
  return s.substr(0, width - 3) + "...";
}

}  // namespace

std::string RenderLogSummary(const storage::QueryStore& store,
                             const std::vector<miner::Session>& sessions,
                             const std::string& viewer, size_t max_sessions) {
  std::string out = "Query log (viewed by " + viewer + ")\n";
  size_t shown = 0;
  // One ACL resolution per owner across all rendered sessions.
  storage::VisibilityCache cache(&store, viewer);
  for (auto it = sessions.rbegin(); it != sessions.rend(); ++it) {
    if (shown >= max_sessions) break;
    const miner::Session& s = *it;
    std::vector<storage::QueryId> visible;
    for (storage::QueryId id : s.queries) {
      if (cache.VisibleId(id)) visible.push_back(id);
    }
    if (visible.empty()) continue;
    ++shown;
    Micros span = (s.end - s.start) / kMicrosPerMinute;
    out += "session #" + std::to_string(s.id) + "  user=" + s.user + "  " +
           std::to_string(visible.size()) + " queries over " +
           std::to_string(span) + " min\n";
    const storage::QueryRecord* first = store.Get(visible.front());
    const storage::QueryRecord* last = store.Get(visible.back());
    if (first != nullptr) out += "  starts: " + Truncate(first->text, 68) + "\n";
    if (last != nullptr && last != first) {
      out += "  ends:   " + Truncate(last->text, 68) + "\n";
    }
  }
  if (shown == 0) out += "(no visible sessions)\n";
  return out;
}

std::string RenderQueryDetails(const storage::QueryStore& store,
                               storage::QueryId id) {
  const storage::QueryRecord* r = store.Get(id);
  if (r == nullptr) return "(no such query)\n";
  std::string out = "Query q" + std::to_string(id) + " by " + r->user + "\n";
  out += "  text: " + r->text + "\n";
  out += "  status: " + std::string(r->stats.succeeded ? "ok" : "FAILED") + "\n";
  if (!r->stats.error.empty()) out += "  error: " + r->stats.error + "\n";
  out += "  executed in " + std::to_string(r->stats.execution_micros) +
         " us, " + std::to_string(r->stats.result_rows) + " rows (" +
         std::to_string(r->stats.rows_scanned) + " scanned)\n";
  out += "  quality: " + std::to_string(r->quality) + "\n";
  if (r->session_id != storage::kInvalidSessionId) {
    out += "  session: #" + std::to_string(r->session_id) + "\n";
  }
  if (r->flags != storage::kFlagNone) {
    out += "  flags:";
    if (r->HasFlag(storage::kFlagSchemaBroken)) out += " schema-broken";
    if (r->HasFlag(storage::kFlagRepaired)) out += " repaired";
    if (r->HasFlag(storage::kFlagObsolete)) out += " obsolete";
    if (r->HasFlag(storage::kFlagStatsStale)) out += " stats-stale";
    if (r->HasFlag(storage::kFlagDeleted)) out += " deleted";
    out += "\n";
  }
  if (!r->stats.plan.empty()) {
    out += "  plan:\n";
    for (const std::string& line : Split(r->stats.plan, '\n')) {
      if (!line.empty()) out += "    " + line + "\n";
    }
  }
  if (!r->summary.column_names.empty()) {
    out += "  output: " + std::to_string(r->summary.total_rows) + " rows";
    out += r->summary.complete ? " (stored completely)\n"
                               : " (sample of " +
                                     std::to_string(r->summary.sample_rows.size()) +
                                     ")\n";
    size_t show = std::min<size_t>(3, r->summary.sample_rows.size());
    for (size_t i = 0; i < show; ++i) {
      out += "    " + db::RowToString(r->summary.sample_rows[i]) + "\n";
    }
  }
  for (const storage::Annotation& a : r->annotations) {
    out += "  note (" + a.author + "): " + a.text +
           (a.fragment.empty() ? "" : " [on: " + a.fragment + "]") + "\n";
  }
  return out;
}

std::string RenderClusters(const storage::QueryStore& store,
                           const miner::Clustering& clustering,
                           const std::string& viewer, size_t max_clusters) {
  std::string out = "Query clusters\n";
  for (size_t i = 0; i < clustering.clusters.size() && i < max_clusters; ++i) {
    storage::QueryId medoid = clustering.medoids[i];
    if (!store.Visible(viewer, medoid)) continue;
    const storage::QueryRecord* r = store.Get(medoid);
    if (r == nullptr) continue;
    out += "cluster " + std::to_string(i) + " (" +
           std::to_string(clustering.clusters[i].size()) + " queries): " +
           Truncate(r->text, 64) + "\n";
  }
  return out;
}

}  // namespace cqms::client
