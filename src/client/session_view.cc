#include "client/session_view.h"

#include <map>

namespace cqms::client {

namespace {

std::string Truncate(const std::string& s, size_t width) {
  if (s.size() <= width) return s;
  return s.substr(0, width - 3) + "...";
}

std::string MinuteOffset(Micros start, Micros t) {
  Micros delta = t - start;
  int64_t minutes = delta / kMicrosPerMinute;
  int64_t seconds = (delta % kMicrosPerMinute) / kMicrosPerSecond;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "+%lld:%02lld", static_cast<long long>(minutes),
                static_cast<long long>(seconds));
  return buf;
}

std::string DotEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

std::string RenderSessionAscii(const storage::QueryStore& store,
                               const miner::Session& session,
                               size_t max_text_width) {
  std::string out = "Session #" + std::to_string(session.id) + " (user " +
                    session.user + ", " + std::to_string(session.queries.size()) +
                    " queries)\n";
  // Edge lookup by source query.
  std::map<storage::QueryId, const miner::SessionEdge*> edge_from;
  for (const miner::SessionEdge& e : session.edges) edge_from[e.from] = &e;

  for (size_t i = 0; i < session.queries.size(); ++i) {
    storage::QueryId id = session.queries[i];
    const storage::QueryRecord* r = store.Get(id);
    if (r == nullptr) continue;
    out += "  [q" + std::to_string(id) + " " +
           MinuteOffset(session.start, r->timestamp) + "] " +
           Truncate(r->parse_failed() ? r->text + "  (parse error)"
                                      : r->canonical_text,
                    max_text_width) +
           "\n";
    auto it = edge_from.find(id);
    if (it != edge_from.end() && i + 1 < session.queries.size()) {
      out += "     | " + it->second->diff.Summary() + "\n";
    }
  }
  return out;
}

std::string RenderSessionDot(const storage::QueryStore& store,
                             const miner::Session& session) {
  std::string out = "digraph session_" + std::to_string(session.id) + " {\n";
  out += "  rankdir=LR;\n  node [shape=box, fontname=\"monospace\"];\n";
  for (storage::QueryId id : session.queries) {
    const storage::QueryRecord* r = store.Get(id);
    if (r == nullptr) continue;
    out += "  q" + std::to_string(id) + " [label=\"" +
           DotEscape(Truncate(r->text, 48)) + "\"];\n";
  }
  for (const miner::SessionEdge& e : session.edges) {
    out += "  q" + std::to_string(e.from) + " -> q" + std::to_string(e.to) +
           " [label=\"" + DotEscape(Truncate(e.diff.Summary(), 40)) + "\"];\n";
  }
  out += "}\n";
  return out;
}

}  // namespace cqms::client
