#ifndef CQMS_CLIENT_SESSION_VIEW_H_
#define CQMS_CLIENT_SESSION_VIEW_H_

#include <string>

#include "miner/sessionizer.h"
#include "storage/query_store.h"

namespace cqms::client {

/// Renders a query session as ASCII art in the spirit of Figure 2: one
/// node per query (its canonical text truncated), labeled edges showing
/// the diff to the next query, and wall-clock offsets.
///
///   [q12 2:30] SELECT * FROM watertemp
///      | +watersalinity
///   [q13 2:31] SELECT * FROM watersalinity, watertemp
///      | watertemp.temp < 22 -> watertemp.temp < 18
///   ...
std::string RenderSessionAscii(const storage::QueryStore& store,
                               const miner::Session& session,
                               size_t max_text_width = 72);

/// Renders a session as a Graphviz DOT digraph (nodes = queries, edge
/// labels = diffs) for the paper's visual style.
std::string RenderSessionDot(const storage::QueryStore& store,
                             const miner::Session& session);

}  // namespace cqms::client

#endif  // CQMS_CLIENT_SESSION_VIEW_H_
