#ifndef CQMS_PROFILER_OUTPUT_SUMMARIZER_H_
#define CQMS_PROFILER_OUTPUT_SUMMARIZER_H_

#include <cstddef>

#include "common/clock.h"
#include "common/rng.h"
#include "db/database.h"
#include "storage/query_record.h"

namespace cqms::profiler {

/// Policy knobs for the adaptive output summarizer.
///
/// The paper (§4.1) proposes adjusting "the maximum size allowed for the
/// output summary depending on the query execution time": a two-hour
/// query producing ten rows should keep all ten; a two-second query
/// producing two million rows should keep almost nothing. The budget is
///
///   budget = clamp(min_rows + execution_ms * rows_per_milli, min, max)
///
/// and if the whole result fits in the budget it is stored completely
/// (`OutputSummary::complete`). Oversized results are reservoir-sampled.
struct SummarizerOptions {
  size_t min_rows = 8;
  size_t max_rows = 256;
  double rows_per_milli = 0.1;  ///< Extra budget rows per ms of execution.
  uint64_t sample_seed = 42;    ///< Reservoir sampling seed.
};

/// Builds an output summary for `result` given the measured execution
/// time. Deterministic for a fixed seed.
storage::OutputSummary SummarizeOutput(const db::QueryResult& result,
                                       Micros execution_micros,
                                       const SummarizerOptions& options = {});

/// The row budget the policy grants (exposed for tests and benches).
size_t SummaryBudget(Micros execution_micros, uint64_t result_rows,
                     const SummarizerOptions& options);

}  // namespace cqms::profiler

#endif  // CQMS_PROFILER_OUTPUT_SUMMARIZER_H_
