#include "profiler/output_summarizer.h"

#include <algorithm>

namespace cqms::profiler {

size_t SummaryBudget(Micros execution_micros, uint64_t /*result_rows*/,
                     const SummarizerOptions& options) {
  double ms = static_cast<double>(execution_micros) / 1000.0;
  double budget = static_cast<double>(options.min_rows) + ms * options.rows_per_milli;
  budget = std::min(budget, static_cast<double>(options.max_rows));
  budget = std::max(budget, static_cast<double>(options.min_rows));
  return static_cast<size_t>(budget);
}

storage::OutputSummary SummarizeOutput(const db::QueryResult& result,
                                       Micros execution_micros,
                                       const SummarizerOptions& options) {
  storage::OutputSummary summary;
  summary.total_rows = result.rows.size();
  summary.column_names = result.column_names;
  summary.budget_rows = SummaryBudget(execution_micros, result.rows.size(), options);

  if (result.rows.size() <= summary.budget_rows) {
    summary.sample_rows = result.rows;
    summary.complete = true;
    return summary;
  }

  // Reservoir sampling (Algorithm R): uniform without replacement, one
  // pass, deterministic from the seed.
  Rng rng(options.sample_seed);
  summary.sample_rows.assign(result.rows.begin(),
                             result.rows.begin() + summary.budget_rows);
  for (size_t i = summary.budget_rows; i < result.rows.size(); ++i) {
    uint64_t j = rng.Uniform(i + 1);
    if (j < summary.budget_rows) {
      summary.sample_rows[j] = result.rows[i];
    }
  }
  summary.complete = false;
  return summary;
}

}  // namespace cqms::profiler
