#include "profiler/query_profiler.h"

#include "storage/record_builder.h"

namespace cqms::profiler {

namespace {

/// A text-only record skips parsing entirely (kTextOnly level).
storage::QueryRecord BuildTextOnlyRecord(std::string text, std::string user,
                                         Micros timestamp) {
  storage::QueryRecord record;
  record.text = std::move(text);
  record.user = std::move(user);
  record.timestamp = timestamp;
  return record;
}

}  // namespace

QueryProfiler::QueryProfiler(const db::Database* database,
                             storage::QueryStore* store, const Clock* clock,
                             ProfilerOptions options)
    : database_(database), store_(store), clock_(clock), options_(options) {}

ProfiledExecution QueryProfiler::ExecuteAndProfile(std::string_view sql_text,
                                                   const std::string& user) {
  ProfiledExecution out;
  const Micros submitted_at = clock_->Now();

  WallTimer timer;
  auto exec = database_->ExecuteSql(sql_text);
  const Micros elapsed = timer.ElapsedMicros();

  out.stats.execution_micros = elapsed;
  if (exec.ok()) {
    out.stats.succeeded = true;
    out.stats.result_rows = exec->rows.size();
    out.stats.rows_scanned = exec->rows_scanned;
    out.stats.plan = exec->plan;
  } else {
    out.stats.succeeded = false;
    out.stats.error = exec.status().ToString();
  }

  // Log per level.
  if (options_.level != ProfilingLevel::kOff &&
      (exec.ok() || options_.log_failed_queries)) {
    storage::QueryRecord record =
        options_.level == ProfilingLevel::kTextOnly
            ? BuildTextOnlyRecord(std::string(sql_text), user, submitted_at)
            : storage::BuildRecordFromText(std::string(sql_text), user,
                                           submitted_at);
    record.stats = out.stats;
    if (options_.level == ProfilingLevel::kFull && exec.ok()) {
      record.summary = SummarizeOutput(*exec, elapsed, options_.summarizer);
    }
    out.query_id = store_->Append(std::move(record));
  }

  if (exec.ok()) out.result = std::move(exec).value();
  return out;
}

storage::QueryId QueryProfiler::LogOnly(std::string_view sql_text,
                                        const std::string& user) {
  storage::QueryRecord record = storage::BuildRecordFromText(
      std::string(sql_text), user, clock_->Now());
  return store_->Append(std::move(record));
}

}  // namespace cqms::profiler
