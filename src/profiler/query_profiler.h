#ifndef CQMS_PROFILER_QUERY_PROFILER_H_
#define CQMS_PROFILER_QUERY_PROFILER_H_

#include <string>
#include <string_view>

#include "common/clock.h"
#include "common/result.h"
#include "db/database.h"
#include "profiler/output_summarizer.h"
#include "storage/query_store.h"

namespace cqms::profiler {

/// How much work the profiler does per query. The paper's first
/// requirement (§2.1) is that profiling "does not impose significant
/// runtime overhead"; the levels make that overhead measurable (bench E1).
enum class ProfilingLevel {
  kOff,       ///< Pass-through: execute only, log nothing.
  kTextOnly,  ///< Log raw text + runtime stats.
  kFeatures,  ///< + parse, canonicalize, extract syntactic features.
  kFull,      ///< + adaptive output summary (default).
};

struct ProfilerOptions {
  ProfilingLevel level = ProfilingLevel::kFull;
  SummarizerOptions summarizer;
  /// Log queries that fail to parse or bind (they feed the correction
  /// engine; §2.3). On by default.
  bool log_failed_queries = true;
};

/// Outcome of a profiled execution.
struct ProfiledExecution {
  storage::QueryId query_id = storage::kInvalidQueryId;  ///< kInvalid at kOff.
  db::QueryResult result;
  storage::RuntimeStats stats;
};

/// The CQMS Query Profiler (Figure 4): sits in front of the DBMS,
/// forwards standard SQL, and logs text, features, runtime statistics
/// and output samples into the Query Storage.
class QueryProfiler {
 public:
  /// `database`, `store` and `clock` must outlive the profiler.
  QueryProfiler(const db::Database* database, storage::QueryStore* store,
                const Clock* clock, ProfilerOptions options = {});

  /// Executes `sql_text` on behalf of `user`, logging per the configured
  /// level. The profiler itself never fails: query failures
  /// (parse/bind/runtime) are reported through `stats.succeeded` /
  /// `stats.error` and are still logged (when `log_failed_queries`),
  /// because failed attempts feed the correction engine.
  ProfiledExecution ExecuteAndProfile(std::string_view sql_text,
                                      const std::string& user);

  /// Logs a query without executing it (used when importing historical
  /// logs whose results are unknown).
  storage::QueryId LogOnly(std::string_view sql_text, const std::string& user);

  const ProfilerOptions& options() const { return options_; }
  void set_level(ProfilingLevel level) { options_.level = level; }

 private:
  const db::Database* database_;
  storage::QueryStore* store_;
  const Clock* clock_;
  ProfilerOptions options_;
};

}  // namespace cqms::profiler

#endif  // CQMS_PROFILER_QUERY_PROFILER_H_
