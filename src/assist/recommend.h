#ifndef CQMS_ASSIST_RECOMMEND_H_
#define CQMS_ASSIST_RECOMMEND_H_

#include <string>
#include <vector>

#include "metaquery/meta_query_executor.h"
#include "miner/query_miner.h"
#include "storage/query_store.h"

namespace cqms::assist {

/// One row of the Figure-3 "Similar Queries" panel: score, query text,
/// diff against what the user typed, and the best annotation.
struct Recommendation {
  storage::QueryId id = storage::kInvalidQueryId;
  double score = 0;        ///< Ranked score (the panel's percentage).
  double similarity = 0;   ///< Raw similarity component.
  std::string text;        ///< The recommended query's SQL.
  std::string diff;        ///< Compact diff vs. the probe ("-1 col, -1 pred").
  std::string annotation;  ///< Most recent annotation text, if any.
};

struct RecommendOptions {
  metaquery::SimilarityWeights weights;
  metaquery::RankingOptions ranking;
  /// §4.3: "query recommendations can be limited to queries from users
  /// who have similar query session patterns as the current user". When
  /// set (and a miner is available), candidates from users sharing no
  /// session skeleton with the viewer are discarded.
  bool restrict_to_similar_sessions = false;
  /// Collapse recommendations that share a canonical fingerprint.
  bool deduplicate = true;
};

/// Full-query recommendation engine (§2.3).
class RecommendationEngine {
 public:
  /// `store` must outlive the engine; `miner` may be null (disables the
  /// session-pattern restriction).
  RecommendationEngine(const storage::QueryStore* store,
                       const miner::QueryMiner* miner = nullptr);

  /// Recommends up to `k` logged queries similar to `sql_text` (a full
  /// or partially composed query; it must parse). Results are visible to
  /// `viewer`, best first.
  Result<std::vector<Recommendation>> Recommend(
      const std::string& viewer, const std::string& sql_text, size_t k,
      const RecommendOptions& options = {}) const;

 private:
  const storage::QueryStore* store_;
  const miner::QueryMiner* miner_;
  /// Runs the kNN request through the unified planner pipeline; owning
  /// the executor keeps its per-viewer visibility caches warm across
  /// keystrokes (recommendations fire on every pause in typing).
  metaquery::MetaQueryExecutor executor_;
};

}  // namespace cqms::assist

#endif  // CQMS_ASSIST_RECOMMEND_H_
