#ifndef CQMS_ASSIST_CORRECTION_H_
#define CQMS_ASSIST_CORRECTION_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "db/database.h"
#include "storage/query_store.h"

namespace cqms::assist {

/// One proposed correction (the "spell checker" of §2.3).
struct Correction {
  enum class Kind { kTableName, kColumnName, kPredicateConstant };
  Kind kind = Kind::kTableName;
  std::string original;
  std::string replacement;
  double confidence = 0;  ///< In (0,1]; higher = safer to auto-apply.
  std::string reason;
};

struct CorrectionOptions {
  /// Maximum edit distance for identifier spell-checking.
  size_t max_edit_distance = 2;
  /// Auto-apply threshold used by AutoCorrect.
  double min_confidence_to_apply = 0.5;
};

/// Correction engine: identifier spell-check against the catalog, and
/// predicate relaxation for queries that return the empty set (§2.3:
/// "if a predicate causes a query to return the empty set, the CQMS
/// could suggest similar, previously issued predicates that return a
/// non-empty set").
class CorrectionEngine {
 public:
  /// `store` and `database` must outlive the engine.
  CorrectionEngine(const storage::QueryStore* store, const db::Database* database,
                   CorrectionOptions options = {});

  /// Proposes fixes for unknown table/column names in `sql_text`
  /// (which may fail to parse or bind). Best suggestion first.
  std::vector<Correction> CorrectIdentifiers(const std::string& sql_text) const;

  /// For a parsed query with an empty result, proposes replacement
  /// constants from logged same-skeleton predicates whose queries
  /// returned rows. `viewer` scopes visibility.
  std::vector<Correction> SuggestPredicateRelaxations(
      const std::string& viewer, const sql::SelectStatement& stmt) const;

  /// Applies identifier corrections above the confidence threshold and
  /// returns the corrected text. Fails if nothing could be improved.
  Result<std::string> AutoCorrect(const std::string& sql_text) const;

 private:
  const storage::QueryStore* store_;
  const db::Database* database_;
  CorrectionOptions options_;
};

}  // namespace cqms::assist

#endif  // CQMS_ASSIST_CORRECTION_H_
