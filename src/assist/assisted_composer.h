#ifndef CQMS_ASSIST_ASSISTED_COMPOSER_H_
#define CQMS_ASSIST_ASSISTED_COMPOSER_H_

#include <string>
#include <vector>

#include "assist/completion.h"
#include "assist/correction.h"
#include "assist/recommend.h"

namespace cqms::assist {

/// Everything the Figure-3 client pane shows for the current text state:
/// completions, corrections and similar-query recommendations.
struct AssistResponse {
  std::vector<CompletionSuggestion> completions;
  std::vector<Correction> corrections;
  std::vector<Recommendation> recommendations;
};

struct AssistOptions {
  size_t max_completions = 8;
  size_t max_recommendations = 5;
  RecommendOptions recommend;
};

/// The Assisted Interaction Mode facade (§2.3): one call per keystroke /
/// pause returns everything the client needs to render.
class AssistedComposer {
 public:
  /// All pointers must outlive the composer; `miner` may be null.
  AssistedComposer(const storage::QueryStore* store, const db::Database* database,
                   const miner::QueryMiner* miner, AssistOptions options = {});

  /// Computes suggestions for the partial text `viewer` has typed.
  /// Recommendations require the text to parse; completions and
  /// corrections work on any prefix.
  AssistResponse Assist(const std::string& viewer,
                        const std::string& partial_text) const;

 private:
  CompletionEngine completion_;
  CorrectionEngine correction_;
  RecommendationEngine recommendation_;
  AssistOptions options_;
};

}  // namespace cqms::assist

#endif  // CQMS_ASSIST_ASSISTED_COMPOSER_H_
