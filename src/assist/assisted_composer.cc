#include "assist/assisted_composer.h"

namespace cqms::assist {

AssistedComposer::AssistedComposer(const storage::QueryStore* store,
                                   const db::Database* database,
                                   const miner::QueryMiner* miner,
                                   AssistOptions options)
    : completion_(store, miner, &database->catalog()),
      correction_(store, database),
      recommendation_(store, miner),
      options_(options) {}

AssistResponse AssistedComposer::Assist(const std::string& viewer,
                                        const std::string& partial_text) const {
  AssistResponse response;
  response.completions =
      completion_.Complete(viewer, partial_text, options_.max_completions);
  response.corrections = correction_.CorrectIdentifiers(partial_text);
  auto recs = recommendation_.Recommend(viewer, partial_text,
                                        options_.max_recommendations,
                                        options_.recommend);
  if (recs.ok()) response.recommendations = std::move(recs).value();
  return response;
}

}  // namespace cqms::assist
