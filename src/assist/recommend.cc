#include "assist/recommend.h"

#include <algorithm>
#include <set>
#include <unordered_map>

#include "common/sorted_vector.h"
#include "sql/diff.h"
#include "storage/record_builder.h"

namespace cqms::assist {

namespace {

/// Skeleton fingerprints of every query a user has issued — a cheap
/// signature of their "session patterns". Sorted and deduplicated so
/// overlap checks are a linear merge, not set lookups.
std::vector<uint64_t> UserSkeletons(const storage::QueryStore& store,
                                    const std::string& user) {
  std::vector<uint64_t> out;
  out.reserve(store.QueriesByUser(user).size());
  for (storage::QueryId id : store.QueriesByUser(user)) {
    const storage::QueryRecord* r = store.Get(id);
    if (r != nullptr && !r->parse_failed()) out.push_back(r->skeleton_fingerprint);
  }
  SortUnique(&out);
  return out;
}

}  // namespace

RecommendationEngine::RecommendationEngine(const storage::QueryStore* store,
                                           const miner::QueryMiner* miner)
    : store_(store), miner_(miner), executor_(store) {}

Result<std::vector<Recommendation>> RecommendationEngine::Recommend(
    const std::string& viewer, const std::string& sql_text, size_t k,
    const RecommendOptions& options) const {
  storage::QueryRecord probe = storage::BuildRecordFromText(
      sql_text, viewer, 0, storage::SignatureMode::kTransient);
  if (probe.parse_failed()) {
    return Status::ParseError("cannot recommend for unparsable text: " +
                              probe.stats.error);
  }

  // Over-fetch to survive dedup/session filtering.
  std::vector<metaquery::Neighbor> neighbors = executor_.Knn(
      viewer, probe, k * 4 + 8, options.weights, options.ranking);

  std::vector<uint64_t> viewer_skeletons;
  std::unordered_map<std::string, std::vector<uint64_t>> author_skeletons;
  if (options.restrict_to_similar_sessions) {
    viewer_skeletons = UserSkeletons(*store_, viewer);
  }

  std::vector<Recommendation> out;
  std::set<uint64_t> seen_fingerprints;
  for (const metaquery::Neighbor& n : neighbors) {
    if (out.size() >= k) break;
    const storage::QueryRecord* r = store_->Get(n.id);
    if (r == nullptr || r->parse_failed()) continue;
    if (options.deduplicate && !seen_fingerprints.insert(r->fingerprint).second) {
      continue;
    }
    if (options.restrict_to_similar_sessions && r->user != viewer) {
      // Keep only authors whose history shares a skeleton with the viewer;
      // each author's history is collected and sorted at most once.
      auto [it, inserted] = author_skeletons.try_emplace(r->user);
      if (inserted) it->second = UserSkeletons(*store_, r->user);
      if (!SortedIntersects(it->second, viewer_skeletons)) continue;
    }
    Recommendation rec;
    rec.id = n.id;
    rec.score = n.score;
    rec.similarity = n.similarity;
    rec.text = r->text;
    rec.diff = sql::DiffQueries(probe.components, r->components).Summary();
    if (!r->annotations.empty()) {
      rec.annotation = r->annotations.back().text;
    }
    out.push_back(std::move(rec));
  }
  return out;
}

}  // namespace cqms::assist
