#include "assist/completion.h"

#include <algorithm>
#include <cctype>
#include <set>

#include "common/string_util.h"
#include "sql/lexer.h"

namespace cqms::assist {

namespace {

/// Tables already referenced in the partial text's FROM clause(s),
/// recovered token-wise (the text usually does not parse yet).
std::vector<std::string> TablesInPartial(const std::string& partial_text) {
  auto tokens = sql::Tokenize(partial_text);
  std::vector<std::string> tables;
  if (!tokens.ok()) return tables;
  bool in_from = false;
  bool expect_table = false;
  for (const sql::Token& t : *tokens) {
    if (t.kind == sql::TokenKind::kKeyword) {
      if (t.text == "FROM" || t.text == "JOIN") {
        in_from = true;
        expect_table = true;
        continue;
      }
      if (t.text == "WHERE" || t.text == "GROUP" || t.text == "ORDER" ||
          t.text == "HAVING" || t.text == "LIMIT" || t.text == "SELECT" ||
          t.text == "ON" || t.text == "UNION") {
        in_from = false;
      }
      continue;
    }
    if (!in_from) continue;
    if (t.kind == sql::TokenKind::kComma) {
      expect_table = true;
      continue;
    }
    if (t.kind == sql::TokenKind::kIdentifier && expect_table) {
      tables.push_back(ToLower(t.text));
      expect_table = false;  // next identifier would be an alias
    }
  }
  return tables;
}

/// The trailing identifier fragment being typed, if the text does not
/// end in whitespace/punctuation. E.g. "SELECT * FROM Wat" -> "Wat".
std::string TrailingPrefix(const std::string& text) {
  size_t end = text.size();
  size_t start = end;
  while (start > 0) {
    char c = text[start - 1];
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
      --start;
    } else {
      break;
    }
  }
  return text.substr(start, end - start);
}

}  // namespace

ClauseContext InferClause(const std::string& partial_text) {
  auto tokens = sql::Tokenize(partial_text);
  if (!tokens.ok()) return ClauseContext::kOther;
  ClauseContext clause = ClauseContext::kStart;
  for (const sql::Token& t : *tokens) {
    if (t.kind != sql::TokenKind::kKeyword) continue;
    if (t.text == "SELECT") clause = ClauseContext::kSelect;
    else if (t.text == "FROM" || t.text == "JOIN") clause = ClauseContext::kFrom;
    else if (t.text == "WHERE" || t.text == "ON" || t.text == "HAVING") {
      clause = ClauseContext::kWhere;
    } else if (t.text == "GROUP") clause = ClauseContext::kGroupBy;
    else if (t.text == "ORDER") clause = ClauseContext::kOrderBy;
    else if (t.text == "LIMIT") clause = ClauseContext::kOther;
  }
  return clause;
}

CompletionEngine::CompletionEngine(const storage::QueryStore* store,
                                   const miner::QueryMiner* miner,
                                   const db::Catalog* catalog)
    : store_(store), miner_(miner), catalog_(catalog) {}

std::vector<CompletionSuggestion> CompletionEngine::Complete(
    const std::string& /*viewer*/, const std::string& partial_text,
    size_t limit) const {
  ClauseContext clause = InferClause(partial_text);
  std::string prefix = TrailingPrefix(partial_text);

  // If the prefix itself is mid-keyword ("SELECT * FR"), offer keywords.
  std::vector<CompletionSuggestion> out;
  if (!prefix.empty()) {
    for (const char* kw : {"SELECT", "FROM", "WHERE", "GROUP BY", "ORDER BY",
                           "HAVING", "LIMIT", "JOIN", "DISTINCT", "BETWEEN",
                           "LIKE", "UNION"}) {
      if (StartsWithIgnoreCase(kw, prefix) && !EqualsIgnoreCase(kw, prefix)) {
        out.push_back({CompletionSuggestion::Kind::kKeyword, kw, 0.4,
                       "keyword"});
      }
    }
  }

  // If the prefix is a complete keyword spelling, treat it as consumed.
  std::string effective_prefix = prefix;
  if (sql::IsReservedKeyword(ToUpper(prefix))) effective_prefix.clear();

  std::vector<CompletionSuggestion> clause_suggestions;
  switch (clause) {
    case ClauseContext::kStart:
      clause_suggestions.push_back(
          {CompletionSuggestion::Kind::kKeyword, "SELECT", 1.0, "start a query"});
      break;
    case ClauseContext::kFrom:
      clause_suggestions = CompleteTables(partial_text, effective_prefix, limit);
      break;
    case ClauseContext::kWhere: {
      clause_suggestions = CompleteColumns(partial_text, effective_prefix, limit);
      auto predicates = CompletePredicates(partial_text, limit);
      clause_suggestions.insert(clause_suggestions.end(), predicates.begin(),
                                predicates.end());
      break;
    }
    case ClauseContext::kSelect:
    case ClauseContext::kGroupBy:
    case ClauseContext::kOrderBy:
      clause_suggestions = CompleteColumns(partial_text, effective_prefix, limit);
      break;
    case ClauseContext::kOther:
      break;
  }
  out.insert(out.end(), clause_suggestions.begin(), clause_suggestions.end());

  std::stable_sort(out.begin(), out.end(),
                   [](const CompletionSuggestion& a, const CompletionSuggestion& b) {
                     return a.score > b.score;
                   });
  if (out.size() > limit) out.resize(limit);
  return out;
}

std::vector<CompletionSuggestion> CompletionEngine::CompleteTables(
    const std::string& partial_text, const std::string& prefix,
    size_t limit) const {
  std::vector<CompletionSuggestion> out;
  std::vector<std::string> present = TablesInPartial(partial_text);
  std::set<std::string> present_set(present.begin(), present.end());

  // Context-aware scores from association rules (the paper's
  // WaterSalinity -> WaterTemp example).
  std::map<std::string, std::pair<double, std::string>> scores;  // table -> (score, reason)
  if (use_association_rules_ && miner_ != nullptr && !present.empty()) {
    std::vector<std::string> context;
    context.reserve(present.size());
    for (const std::string& t : present) context.push_back("t:" + t);
    for (const auto& [item, confidence] :
         miner::SuggestFromRules(miner_->rules(), context, limit * 2)) {
      if (item.rfind("t:", 0) != 0) continue;
      std::string table = item.substr(2);
      // Rule confidence dominates: range [1, 2).
      scores[table] = {1.0 + confidence,
                       "co-occurs with " + Join(present, "+")};
    }
  }

  // Popularity fallback: range (0, 1).
  if (miner_ != nullptr) {
    for (const auto& [table, score] : miner_->popularity().TopTables(limit * 4)) {
      if (scores.count(table) > 0) continue;
      double denom = 1.0 + score;
      scores[table] = {score / denom, "popular table"};
    }
  }

  // Catalog completes the candidate set (score epsilon).
  if (catalog_ != nullptr) {
    for (const std::string& table : catalog_->TableNames()) {
      if (scores.count(table) == 0) scores[table] = {0.01, "in catalog"};
    }
  }

  for (const auto& [table, score_reason] : scores) {
    if (present_set.count(table) > 0) continue;
    if (!prefix.empty() && !StartsWithIgnoreCase(table, prefix)) continue;
    out.push_back({CompletionSuggestion::Kind::kTable, table,
                   score_reason.first, score_reason.second});
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const CompletionSuggestion& a, const CompletionSuggestion& b) {
                     if (a.score != b.score) return a.score > b.score;
                     return a.text < b.text;
                   });
  if (out.size() > limit) out.resize(limit);
  return out;
}

std::vector<CompletionSuggestion> CompletionEngine::CompleteColumns(
    const std::string& partial_text, const std::string& prefix,
    size_t limit) const {
  std::vector<CompletionSuggestion> out;
  if (catalog_ == nullptr) return out;
  std::vector<std::string> tables = TablesInPartial(partial_text);
  if (tables.empty()) {
    // SELECT typed before FROM: offer columns of popular tables.
    if (miner_ != nullptr) {
      for (const auto& [table, score] : miner_->popularity().TopTables(3)) {
        tables.push_back(table);
      }
    }
  }
  for (const std::string& table : tables) {
    const db::TableSchema* schema = catalog_->FindTable(table);
    if (schema == nullptr) continue;
    for (const db::ColumnDef& col : schema->columns()) {
      if (!prefix.empty() && !StartsWithIgnoreCase(col.name, prefix)) continue;
      double popularity =
          miner_ != nullptr
              ? miner_->popularity().AttributeScore(table, col.name)
              : 0;
      out.push_back({CompletionSuggestion::Kind::kColumn, col.name,
                     0.5 + popularity / (1.0 + popularity),
                     "column of " + table});
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const CompletionSuggestion& a, const CompletionSuggestion& b) {
                     if (a.score != b.score) return a.score > b.score;
                     return a.text < b.text;
                   });
  if (out.size() > limit) out.resize(limit);
  return out;
}

std::vector<CompletionSuggestion> CompletionEngine::CompletePredicates(
    const std::string& partial_text, size_t limit) const {
  std::vector<CompletionSuggestion> out;
  if (miner_ == nullptr) return out;
  std::vector<std::string> present = TablesInPartial(partial_text);
  if (present.empty()) return out;
  std::vector<std::string> context;
  context.reserve(present.size());
  for (const std::string& t : present) context.push_back("t:" + t);
  for (const auto& [item, confidence] :
       miner::SuggestFromRules(miner_->rules(), context, limit)) {
    if (item.rfind("p:", 0) != 0) continue;
    out.push_back({CompletionSuggestion::Kind::kPredicate, item.substr(2),
                   confidence, "common predicate here"});
  }
  return out;
}

}  // namespace cqms::assist
