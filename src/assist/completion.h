#ifndef CQMS_ASSIST_COMPLETION_H_
#define CQMS_ASSIST_COMPLETION_H_

#include <string>
#include <vector>

#include "db/schema.h"
#include "miner/query_miner.h"
#include "storage/query_store.h"

namespace cqms::assist {

/// One completion suggestion for the in-flight query (Figure 3's
/// drop-down list).
struct CompletionSuggestion {
  enum class Kind { kKeyword, kTable, kColumn, kPredicate };
  Kind kind = Kind::kKeyword;
  std::string text;    ///< The text to insert/complete.
  double score = 0;    ///< Higher is better.
  std::string reason;  ///< e.g. "co-occurs with watersalinity (conf 0.82)".
};

/// Which clause the cursor is in — determined from the partial text.
enum class ClauseContext {
  kStart,    ///< Nothing typed yet.
  kSelect,
  kFrom,
  kWhere,    ///< Also HAVING / ON: predicate position.
  kGroupBy,
  kOrderBy,
  kOther,
};

/// Infers the clause the cursor sits in from the partial SQL text.
ClauseContext InferClause(const std::string& partial_text);

/// Context-aware completion engine (§2.3). Table suggestions inside FROM
/// use the miner's association rules so that, e.g., having typed
/// `... FROM WaterSalinity, ` the engine ranks WaterTemp above the
/// globally-more-popular CityLocations — the paper's motivating example.
class CompletionEngine {
 public:
  /// `store`, `miner` and `catalog` must outlive the engine. `miner` may
  /// be null (falls back to catalog/popularity-only suggestions).
  CompletionEngine(const storage::QueryStore* store,
                   const miner::QueryMiner* miner, const db::Catalog* catalog);

  /// Suggests completions for `partial_text` as typed so far by `viewer`.
  std::vector<CompletionSuggestion> Complete(const std::string& viewer,
                                             const std::string& partial_text,
                                             size_t limit = 8) const;

  /// Disables association-rule context so tables rank by popularity
  /// alone — the ablation baseline for bench E5. Default on.
  void set_use_association_rules(bool use) { use_association_rules_ = use; }

 private:
  std::vector<CompletionSuggestion> CompleteTables(
      const std::string& partial_text, const std::string& prefix,
      size_t limit) const;
  std::vector<CompletionSuggestion> CompleteColumns(
      const std::string& partial_text, const std::string& prefix,
      size_t limit) const;
  std::vector<CompletionSuggestion> CompletePredicates(
      const std::string& partial_text, size_t limit) const;

  const storage::QueryStore* store_;
  const miner::QueryMiner* miner_;
  const db::Catalog* catalog_;
  bool use_association_rules_ = true;
};

}  // namespace cqms::assist

#endif  // CQMS_ASSIST_COMPLETION_H_
