#include "assist/correction.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/string_util.h"
#include "sql/components.h"
#include "sql/lexer.h"

namespace cqms::assist {

namespace {

/// Known identifiers: table names, column names, and aliases appearing
/// in the text itself.
struct Vocabulary {
  std::set<std::string> tables;   // lower
  std::set<std::string> columns;  // lower
  std::set<std::string> aliases;  // lower
};

Vocabulary BuildVocabulary(const db::Database& database,
                           const std::vector<sql::Token>& tokens) {
  Vocabulary v;
  for (const std::string& t : database.catalog().TableNames()) {
    v.tables.insert(t);
    const db::TableSchema* schema = database.catalog().FindTable(t);
    for (const db::ColumnDef& c : schema->columns()) v.columns.insert(c.name);
  }
  // Alias pass: in FROM clauses, the identifier following a table
  // identifier (or after AS) is an alias.
  bool in_from = false;
  bool expect_table = false;
  bool prev_was_table = false;
  for (const sql::Token& t : tokens) {
    if (t.kind == sql::TokenKind::kKeyword) {
      if (t.text == "FROM" || t.text == "JOIN") {
        in_from = true;
        expect_table = true;
        prev_was_table = false;
        continue;
      }
      if (t.text == "AS") continue;  // keep state
      if (t.text == "WHERE" || t.text == "GROUP" || t.text == "ORDER" ||
          t.text == "HAVING" || t.text == "ON" || t.text == "SELECT" ||
          t.text == "LIMIT" || t.text == "UNION") {
        in_from = false;
        prev_was_table = false;
      }
      continue;
    }
    if (!in_from) continue;
    if (t.kind == sql::TokenKind::kComma) {
      expect_table = true;
      prev_was_table = false;
      continue;
    }
    if (t.kind == sql::TokenKind::kIdentifier) {
      if (expect_table) {
        expect_table = false;
        prev_was_table = true;
      } else if (prev_was_table) {
        v.aliases.insert(ToLower(t.text));
        prev_was_table = false;
      }
    }
  }
  return v;
}

/// Best match within the edit-distance bound, or empty.
std::pair<std::string, size_t> NearestName(const std::string& word,
                                           const std::set<std::string>& names,
                                           size_t max_distance) {
  std::string best;
  size_t best_dist = max_distance + 1;
  for (const std::string& candidate : names) {
    if (candidate == word) return {candidate, 0};
    // Cheap length prune.
    size_t len_diff = candidate.size() > word.size()
                          ? candidate.size() - word.size()
                          : word.size() - candidate.size();
    if (len_diff > max_distance) continue;
    size_t d = EditDistance(word, candidate);
    if (d < best_dist) {
      best_dist = d;
      best = candidate;
    }
  }
  return {best, best_dist};
}

}  // namespace

CorrectionEngine::CorrectionEngine(const storage::QueryStore* store,
                                   const db::Database* database,
                                   CorrectionOptions options)
    : store_(store), database_(database), options_(options) {}

std::vector<Correction> CorrectionEngine::CorrectIdentifiers(
    const std::string& sql_text) const {
  std::vector<Correction> out;
  auto tokens = sql::Tokenize(sql_text);
  if (!tokens.ok()) return out;
  Vocabulary vocab = BuildVocabulary(*database_, *tokens);

  std::set<std::string> reported;
  for (size_t i = 0; i < tokens->size(); ++i) {
    const sql::Token& t = (*tokens)[i];
    if (t.kind != sql::TokenKind::kIdentifier) continue;
    std::string word = ToLower(t.text);
    if (vocab.tables.count(word) || vocab.columns.count(word) ||
        vocab.aliases.count(word)) {
      continue;
    }
    if (!reported.insert(word).second) continue;

    // Is this position a table position (after FROM/JOIN/comma-in-from)?
    bool table_position = false;
    for (size_t j = i; j > 0; --j) {
      const sql::Token& p = (*tokens)[j - 1];
      if (p.kind == sql::TokenKind::kKeyword) {
        table_position = p.text == "FROM" || p.text == "JOIN";
        break;
      }
      if (p.kind != sql::TokenKind::kComma) break;
    }

    const std::set<std::string>& primary =
        table_position ? vocab.tables : vocab.columns;
    const std::set<std::string>& secondary =
        table_position ? vocab.columns : vocab.tables;
    auto [best, dist] = NearestName(word, primary, options_.max_edit_distance);
    Correction::Kind kind =
        table_position ? Correction::Kind::kTableName : Correction::Kind::kColumnName;
    if (best.empty()) {
      auto [best2, dist2] = NearestName(word, secondary, options_.max_edit_distance);
      best = best2;
      dist = dist2;
      kind = table_position ? Correction::Kind::kColumnName
                            : Correction::Kind::kTableName;
    }
    if (best.empty() || dist == 0) continue;
    double confidence = 1.0 - static_cast<double>(dist) /
                                  static_cast<double>(std::max(word.size(),
                                                               best.size()));
    out.push_back({kind, t.text, best, confidence,
                   "unknown identifier; nearest catalog name (distance " +
                       std::to_string(dist) + ")"});
  }
  std::sort(out.begin(), out.end(), [](const Correction& a, const Correction& b) {
    return a.confidence > b.confidence;
  });
  return out;
}

std::vector<Correction> CorrectionEngine::SuggestPredicateRelaxations(
    const std::string& viewer, const sql::SelectStatement& stmt) const {
  std::vector<Correction> out;
  sql::QueryComponents probe = sql::CollectComponents(stmt);

  for (const sql::PredicateFeature& pred : probe.predicates) {
    if (pred.is_join || pred.constant.empty()) continue;
    std::string skeleton = pred.Skeleton();

    // Collect constants used with the same predicate skeleton by logged
    // queries that returned rows.
    std::map<std::string, size_t> constant_votes;
    for (storage::QueryId id :
         store_->QueriesUsingAttribute(pred.relation, pred.attribute)) {
      if (!store_->Visible(viewer, id)) continue;
      const storage::QueryRecord* r = store_->Get(id);
      if (r == nullptr || !r->stats.succeeded || r->stats.result_rows == 0) continue;
      for (const sql::PredicateFeature& logged : r->components.predicates) {
        if (logged.Skeleton() == skeleton && logged.constant != pred.constant) {
          ++constant_votes[logged.constant];
        }
      }
    }
    if (constant_votes.empty()) continue;
    auto best = std::max_element(
        constant_votes.begin(), constant_votes.end(),
        [](const auto& a, const auto& b) { return a.second < b.second; });
    size_t total = 0;
    for (const auto& [c, n] : constant_votes) total += n;
    sql::PredicateFeature suggestion = pred;
    suggestion.constant = best->first;
    out.push_back({Correction::Kind::kPredicateConstant, pred.ToString(),
                   suggestion.ToString(),
                   static_cast<double>(best->second) / static_cast<double>(total),
                   "this predicate returned rows for " +
                       std::to_string(best->second) + " logged queries"});
  }
  std::sort(out.begin(), out.end(), [](const Correction& a, const Correction& b) {
    return a.confidence > b.confidence;
  });
  return out;
}

Result<std::string> CorrectionEngine::AutoCorrect(const std::string& sql_text) const {
  std::vector<Correction> corrections = CorrectIdentifiers(sql_text);
  std::map<std::string, std::string> replacements;  // lower original -> new
  for (const Correction& c : corrections) {
    if (c.confidence < options_.min_confidence_to_apply) continue;
    replacements.emplace(ToLower(c.original), c.replacement);
  }
  if (replacements.empty()) {
    return Status::NotFound("no confident corrections for this text");
  }
  // Rebuild the text by splicing replacements at identifier tokens.
  CQMS_ASSIGN_OR_RETURN(auto tokens, sql::Tokenize(sql_text));
  std::string out;
  size_t cursor = 0;
  for (const sql::Token& t : tokens) {
    if (t.kind != sql::TokenKind::kIdentifier) continue;
    auto it = replacements.find(ToLower(t.text));
    if (it == replacements.end()) continue;
    out += sql_text.substr(cursor, t.offset - cursor);
    out += it->second;
    cursor = t.offset + t.length;
  }
  out += sql_text.substr(cursor);
  return out;
}

}  // namespace cqms::assist
