#include "workload/synthetic.h"

#include <algorithm>

#include "common/string_util.h"

namespace cqms::workload {

namespace {

using db::ColumnDef;
using db::TableSchema;
using db::Value;
using db::ValueType;

const char* kLakes[] = {"Washington", "Union",    "Sammamish", "Chelan",
                        "Crescent",   "Whatcom",  "Ozette",    "Quinault"};
const char* kCities[] = {"Seattle",  "Bellevue", "Tacoma",  "Spokane",
                         "Everett",  "Olympia",  "Detroit", "Chicago"};
const char* kStates[] = {"WA", "WA", "WA", "WA", "WA", "WA", "MI", "IL"};
const char* kSpecies[] = {"salmon", "trout", "perch", "bass", "sturgeon"};
const char* kSensorKinds[] = {"temp", "salinity", "ph", "turbidity"};

/// State of one in-flight exploration session. Each template tracks its
/// own mutable parameters; Render() produces the current SQL text.
class SessionState {
 public:
  enum class Template {
    kCorrelate,   ///< Figure-2 style: temp/salinity correlation.
    kAggregate,   ///< Per-lake aggregates with HAVING refinement.
    kCityLookup,  ///< City filter with constant tweaks.
    kSensors,     ///< Sensors x Readings join exploration.
    kSpecies,     ///< Species counts with IN-list refinement.
  };
  static constexpr size_t kNumTemplates = 5;

  SessionState(Template t, Rng* rng) : template_(t), rng_(rng) {
    temp_threshold_ = rng_->UniformInt(8, 25);
    pop_threshold_ = rng_->UniformInt(1, 8) * 100000;
    value_threshold_ = rng_->UniformInt(2, 40);
    state_ = kStates[rng_->Uniform(8)];
    species_count_ = 1;
  }

  /// Applies one random evolution step; mirrors the edit kinds of the
  /// paper's Figure 2 (tweak constant, add table, add predicate, change
  /// projection, add order/limit).
  void Mutate() {
    switch (rng_->Uniform(5)) {
      case 0:  // tweak the main constant
        temp_threshold_ += rng_->UniformInt(-4, 4);
        value_threshold_ += rng_->UniformInt(-5, 5);
        pop_threshold_ += rng_->UniformInt(-2, 2) * 50000;
        if (pop_threshold_ < 0) pop_threshold_ = 100000;
        break;
      case 1:
        stage_ = std::min<int>(stage_ + 1, 3);  // structural growth
        break;
      case 2:
        narrow_projection_ = !narrow_projection_;
        break;
      case 3:
        with_order_ = true;
        limit_ = 10 * rng_->UniformInt(1, 5);
        break;
      case 4:
        if (template_ == Template::kSpecies) {
          species_count_ = std::min<size_t>(species_count_ + 1, 4);
        } else {
          stage_ = std::min<int>(stage_ + 1, 3);
        }
        break;
    }
  }

  std::string Render() const {
    std::string sql;
    switch (template_) {
      case Template::kCorrelate: {
        sql = narrow_projection_
                  ? "SELECT T.lake, T.temp, S.salinity FROM WaterTemp T"
                  : "SELECT * FROM WaterTemp T";
        if (stage_ >= 1) sql += ", WaterSalinity S";
        sql += " WHERE T.temp < " + std::to_string(temp_threshold_);
        if (stage_ >= 2) sql += " AND S.loc_x = T.loc_x AND S.loc_y = T.loc_y";
        if (stage_ >= 3) sql += " AND S.salinity > 0.1";
        if (stage_ < 1) {
          // Without WaterSalinity the projection must not mention S.
          sql = narrow_projection_ ? "SELECT T.lake, T.temp FROM WaterTemp T"
                                   : "SELECT * FROM WaterTemp T";
          sql += " WHERE T.temp < " + std::to_string(temp_threshold_);
        }
        break;
      }
      case Template::kAggregate: {
        sql = "SELECT lake, AVG(temp) AS avg_temp, COUNT(*) AS n FROM WaterTemp";
        sql += " WHERE temp > " + std::to_string(temp_threshold_ - 10);
        sql += " GROUP BY lake";
        if (stage_ >= 1) sql += " HAVING COUNT(*) > " + std::to_string(stage_);
        if (with_order_) sql += " ORDER BY avg_temp DESC";
        break;
      }
      case Template::kCityLookup: {
        sql = narrow_projection_ ? "SELECT city FROM CityLocations"
                                 : "SELECT * FROM CityLocations";
        sql += " WHERE state = '" + state_ + "'";
        if (stage_ >= 1) sql += " AND pop > " + std::to_string(pop_threshold_);
        if (with_order_) sql += " ORDER BY pop DESC";
        break;
      }
      case Template::kSensors: {
        sql = "SELECT R.ts, R.value FROM Sensors N, Readings R"
              " WHERE N.sensor_id = R.sensor_id";
        if (stage_ >= 1) sql += " AND N.kind = 'temp'";
        if (stage_ >= 2) {
          sql += " AND R.value < " + std::to_string(value_threshold_);
        }
        if (stage_ >= 3) sql += " AND N.lake = 'Washington'";
        break;
      }
      case Template::kSpecies: {
        sql = "SELECT lake, SUM(count_obs) AS total FROM Species WHERE species IN (";
        for (size_t i = 0; i < species_count_; ++i) {
          if (i > 0) sql += ", ";
          sql += std::string("'") + kSpecies[i] + "'";
        }
        sql += ") GROUP BY lake";
        if (stage_ >= 1) sql += " HAVING SUM(count_obs) > 10";
        break;
      }
    }
    if (limit_ > 0 && template_ != Template::kAggregate) {
      sql += " LIMIT " + std::to_string(limit_);
    }
    return sql;
  }

  /// Renders a typo'd variant (misspelled table or column).
  std::string RenderTypo() const {
    std::string sql = Render();
    // Damage the first table-ish identifier we find.
    for (const char* victim : {"WaterTemp", "WaterSalinity", "CityLocations",
                               "Readings", "Species", "Sensors"}) {
      size_t pos = sql.find(victim);
      if (pos != std::string::npos) {
        sql.erase(pos + 2, 1);  // drop a letter: "WaterTemp" -> "Wtertemp"-ish
        return sql;
      }
    }
    return sql + " WHERRE 1 = 1";  // fallback: parse error
  }

 private:
  Template template_;
  Rng* rng_;
  int stage_ = 0;
  bool narrow_projection_ = false;
  bool with_order_ = false;
  int64_t limit_ = 0;
  int64_t temp_threshold_ = 18;
  int64_t pop_threshold_ = 300000;
  int64_t value_threshold_ = 20;
  std::string state_;
  size_t species_count_ = 1;
};

}  // namespace

std::string UserName(size_t i) { return "user" + std::to_string(i); }

Status PopulateLakeDatabase(db::Database* database, size_t rows_per_table,
                            uint64_t seed) {
  Rng rng(seed);
  CQMS_RETURN_IF_ERROR(database->CreateTable(TableSchema(
      "WaterTemp", {{"lake", ValueType::kString},
                    {"loc_x", ValueType::kInt},
                    {"loc_y", ValueType::kInt},
                    {"temp", ValueType::kDouble}})));
  CQMS_RETURN_IF_ERROR(database->CreateTable(TableSchema(
      "WaterSalinity", {{"lake", ValueType::kString},
                        {"loc_x", ValueType::kInt},
                        {"loc_y", ValueType::kInt},
                        {"salinity", ValueType::kDouble}})));
  CQMS_RETURN_IF_ERROR(database->CreateTable(
      TableSchema("CityLocations", {{"city", ValueType::kString},
                                    {"state", ValueType::kString},
                                    {"pop", ValueType::kInt}})));
  CQMS_RETURN_IF_ERROR(database->CreateTable(
      TableSchema("Sensors", {{"sensor_id", ValueType::kInt},
                              {"lake", ValueType::kString},
                              {"kind", ValueType::kString}})));
  CQMS_RETURN_IF_ERROR(database->CreateTable(
      TableSchema("Readings", {{"sensor_id", ValueType::kInt},
                               {"ts", ValueType::kInt},
                               {"value", ValueType::kDouble}})));
  CQMS_RETURN_IF_ERROR(database->CreateTable(
      TableSchema("Species", {{"lake", ValueType::kString},
                              {"species", ValueType::kString},
                              {"count_obs", ValueType::kInt}})));

  for (size_t i = 0; i < rows_per_table; ++i) {
    int64_t x = rng.UniformInt(0, 63);
    int64_t y = rng.UniformInt(0, 63);
    const char* lake = kLakes[rng.Uniform(8)];
    CQMS_RETURN_IF_ERROR(database->Insert(
        "WaterTemp", {Value::String(lake), Value::Int(x), Value::Int(y),
                      Value::Double(5.0 + rng.UniformDouble() * 22.0)}));
    CQMS_RETURN_IF_ERROR(database->Insert(
        "WaterSalinity", {Value::String(kLakes[rng.Uniform(8)]), Value::Int(x),
                          Value::Int(y),
                          Value::Double(rng.UniformDouble() * 0.9)}));
    CQMS_RETURN_IF_ERROR(database->Insert(
        "Readings", {Value::Int(static_cast<int64_t>(rng.Uniform(64))),
                     Value::Int(static_cast<int64_t>(i)),
                     Value::Double(rng.UniformDouble() * 45.0)}));
  }
  for (size_t i = 0; i < 8; ++i) {
    CQMS_RETURN_IF_ERROR(database->Insert(
        "CityLocations",
        {Value::String(kCities[i]), Value::String(kStates[i]),
         Value::Int(rng.UniformInt(50000, 900000))}));
  }
  for (int64_t s = 0; s < 64; ++s) {
    CQMS_RETURN_IF_ERROR(database->Insert(
        "Sensors", {Value::Int(s), Value::String(kLakes[rng.Uniform(8)]),
                    Value::String(kSensorKinds[rng.Uniform(4)])}));
  }
  for (const char* lake : kLakes) {
    for (const char* species : kSpecies) {
      CQMS_RETURN_IF_ERROR(database->Insert(
          "Species", {Value::String(lake), Value::String(species),
                      Value::Int(rng.UniformInt(0, 40))}));
    }
  }
  return Status::Ok();
}

void RegisterUsers(storage::QueryStore* store, const WorkloadOptions& options) {
  for (size_t u = 0; u < options.num_users; ++u) {
    size_t group = u % std::max<size_t>(1, options.num_groups);
    store->acl().AddUser(UserName(u), {"lab" + std::to_string(group)});
  }
}

GroundTruth GenerateLog(profiler::QueryProfiler* profiler,
                        storage::QueryStore* store, SimulatedClock* clock,
                        const WorkloadOptions& options) {
  Rng rng(options.seed);
  GroundTruth truth;

  const char* kAnnotations[] = {
      "correlating salinity with temperature",
      "checking sensor calibration drift",
      "baseline counts for the field report",
      "outlier hunt after the storm event",
  };

  for (size_t s = 0; s < options.num_sessions; ++s) {
    size_t user_idx = rng.Uniform(options.num_users);
    std::string user = UserName(user_idx);
    auto template_id = static_cast<SessionState::Template>(
        rng.Zipf(SessionState::kNumTemplates, options.template_skew));
    SessionState state(template_id, &rng);

    size_t length = static_cast<size_t>(rng.UniformInt(
        static_cast<int64_t>(options.min_session_length),
        static_cast<int64_t>(options.max_session_length)));
    std::vector<storage::QueryId> session_ids;

    for (size_t q = 0; q < length; ++q) {
      bool typo = rng.Bernoulli(options.typo_rate);
      std::string sql = typo ? state.RenderTypo() : state.Render();
      profiler::ProfiledExecution result = profiler->ExecuteAndProfile(sql, user);
      storage::QueryId id = result.query_id;
      if (!result.stats.succeeded) ++truth.typos_generated;
      ++truth.queries_generated;
      if (id != storage::kInvalidQueryId) {
        session_ids.push_back(id);
        truth.session_of[id] = s;
        if (result.stats.succeeded && rng.Bernoulli(options.annotation_rate)) {
          storage::Annotation note;
          note.author = user;
          note.timestamp = clock->Now();
          note.text = kAnnotations[rng.Uniform(4)];
          Status st = store->Annotate(id, std::move(note));
          (void)st;
        }
      }
      clock->Advance(rng.UniformInt(options.min_think_time,
                                    options.max_think_time));
      if (!typo) state.Mutate();
    }
    truth.sessions.push_back(std::move(session_ids));
    clock->Advance(options.session_gap +
                   rng.UniformInt(0, options.session_gap));
  }
  return truth;
}

}  // namespace cqms::workload
