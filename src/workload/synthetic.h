#ifndef CQMS_WORKLOAD_SYNTHETIC_H_
#define CQMS_WORKLOAD_SYNTHETIC_H_

#include <map>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/rng.h"
#include "db/database.h"
#include "profiler/query_profiler.h"
#include "storage/query_store.h"

namespace cqms::workload {

/// Knobs of the synthetic multi-user exploration workload.
///
/// Substitution note (see DESIGN.md): the paper motivates CQMS with
/// SDSS-style shared scientific databases, whose query logs are not
/// available. This generator simulates what those logs *contain* —
/// users running exploration sessions: a seed query repeatedly mutated
/// by small typed edits (tweak a constant, add a predicate, join another
/// table, change the projection), with Zipf-skewed template popularity,
/// occasional typos, and annotations — while emitting ground-truth
/// session labels that real logs would lack.
struct WorkloadOptions {
  size_t num_users = 8;
  size_t num_groups = 3;
  size_t num_sessions = 40;
  size_t min_session_length = 3;
  size_t max_session_length = 9;
  /// Think time between queries in a session (uniform range).
  Micros min_think_time = 5 * kMicrosPerSecond;
  Micros max_think_time = 90 * kMicrosPerSecond;
  /// Idle gap between sessions; must exceed the sessionizer's max_gap
  /// for ground truth to be recoverable.
  Micros session_gap = 30 * kMicrosPerMinute;
  /// Probability that a query is submitted with a typo (fails).
  double typo_rate = 0.05;
  /// Probability that a successful query gets annotated.
  double annotation_rate = 0.08;
  /// Zipf exponent for template popularity.
  double template_skew = 1.0;
  uint64_t seed = 42;
};

/// Ground truth emitted by the generator.
struct GroundTruth {
  /// session index -> logged query ids (in submission order).
  std::vector<std::vector<storage::QueryId>> sessions;
  /// query id -> session index.
  std::map<storage::QueryId, size_t> session_of;
  size_t queries_generated = 0;
  size_t typos_generated = 0;
};

/// Creates the limnology schema (WaterTemp, WaterSalinity,
/// CityLocations, Sensors, Readings, Species) and fills it with
/// `rows_per_table` deterministic rows per large table.
Status PopulateLakeDatabase(db::Database* database, size_t rows_per_table,
                            uint64_t seed = 7);

/// Registers `num_users` users across `num_groups` groups in the ACL
/// (user names "user0".."userN", groups "lab0"..).
void RegisterUsers(storage::QueryStore* store, const WorkloadOptions& options);

/// Drives `profiler` through `options.num_sessions` exploration sessions
/// on the simulated clock, returning ground truth. The database behind
/// the profiler must have been populated with PopulateLakeDatabase;
/// `store` is the profiler's query store (used to attach annotations).
GroundTruth GenerateLog(profiler::QueryProfiler* profiler,
                        storage::QueryStore* store, SimulatedClock* clock,
                        const WorkloadOptions& options);

/// Returns the user name for index `i` ("user<i>").
std::string UserName(size_t i);

}  // namespace cqms::workload

#endif  // CQMS_WORKLOAD_SYNTHETIC_H_
