#ifndef CQMS_STORAGE_STORE_LISTENER_H_
#define CQMS_STORAGE_STORE_LISTENER_H_

#include <string>
#include <vector>

#include "storage/query_record.h"

namespace cqms::storage {

enum class Visibility;

/// Observer of every durable mutation of a QueryStore (and its embedded
/// AccessControl). The write-ahead log subscribes through this interface
/// so existing call sites — the profiler's Append, the maintenance
/// pass's repairs and flags, the facade's ACL administration — become
/// durable without rerouting a single caller. The incremental mining
/// engine's ChangeTracker subscribes through the same interface to
/// accumulate per-cycle dirty sets; a store carries any number of
/// listeners (see QueryStore::AddListener).
///
/// Callbacks fire synchronously, after the mutation has been applied
/// and only when it succeeded. In-place edits through GetMutable()
/// (e.g. the maintenance stats refresh) are intentionally not observed:
/// they mutate refreshable profiling state that the next checkpoint
/// snapshot captures wholesale (see docs/persistence.md).
class StoreListener {
 public:
  virtual ~StoreListener() = default;

  /// `record` is the stored record, after id assignment and signature
  /// finalization.
  virtual void OnAppend(const QueryRecord& record) = 0;
  virtual void OnRewrite(QueryId id, const std::string& new_text) = 0;
  virtual void OnAnnotate(QueryId id, const Annotation& annotation) = 0;
  /// AddFlag (`set`) or ClearFlag (`!set`).
  virtual void OnFlagChange(QueryId id, QueryFlags flag, bool set) = 0;
  virtual void OnSetSession(QueryId id, SessionId session) = 0;
  /// `quality` is the clamped, stored value.
  virtual void OnSetQuality(QueryId id, double quality) = 0;
  virtual void OnDelete(QueryId id) = 0;
  virtual void OnAclAddUser(const std::string& user,
                            const std::vector<std::string>& groups) = 0;
  virtual void OnAclSetVisibility(QueryId id, Visibility visibility) = 0;

  /// The record's output-derived signature section was recomputed
  /// (QueryStore::SyncOutputSignature after a maintenance stats
  /// refresh). Defaulted to a no-op: the WAL deliberately ignores it —
  /// refreshed stats are refreshable state the next checkpoint snapshot
  /// captures wholesale — but similarity-derived caches (the miner's
  /// DistanceCache) must invalidate, since output rows feed
  /// CombinedSimilarity.
  virtual void OnSyncOutputSignature(QueryId id) { (void)id; }
};

}  // namespace cqms::storage

#endif  // CQMS_STORAGE_STORE_LISTENER_H_
