#ifndef CQMS_STORAGE_CHANGE_TRACKER_H_
#define CQMS_STORAGE_CHANGE_TRACKER_H_

#include <string>
#include <vector>

#include "storage/query_record.h"
#include "storage/store_listener.h"

namespace cqms::storage {

class QueryStore;

/// Dirty sets accumulated between two mining refreshes. Every vector is
/// sorted and deduplicated (appends arrive with monotonically increasing
/// ids, so `appended` is additionally in append order). The same id may
/// appear in several sets within one cycle — e.g. appended then deleted
/// — consumers are expected to *resync* each dirty id against the
/// store's current state rather than replay the events in order, which
/// makes consumption order-free and idempotent.
struct ChangeDelta {
  std::vector<QueryId> appended;
  /// Text rewritten: components, signature and sketch all replaced.
  std::vector<QueryId> rewritten;
  /// Only the output-derived signature section changed (maintenance
  /// stats refresh). Similarity caches must invalidate; sessionization,
  /// transactions and popularity are text/feature-derived and need not.
  std::vector<QueryId> output_synced;
  /// kFlagDeleted transitioned to set (Delete or AddFlag).
  std::vector<QueryId> deleted;
  /// kFlagDeleted transitioned to clear (administrative undelete).
  std::vector<QueryId> undeleted;
  /// Session id overwritten by someone other than the suppressed
  /// writer (external reassignment; the sessionizer re-segments the
  /// affected users).
  std::vector<QueryId> session_reassigned;

  bool Empty() const {
    return appended.empty() && rewritten.empty() && output_synced.empty() &&
           deleted.empty() && undeleted.empty() && session_reassigned.empty();
  }

  /// Dirty ids other than plain appends — the part that forces
  /// re-derivation rather than pure extension.
  size_t StructuralSize() const {
    return rewritten.size() + deleted.size() + undeleted.size() +
           session_reassigned.size();
  }
};

/// A StoreListener that accumulates the per-cycle dirty sets the
/// incremental mining engine consumes. Attach() subscribes it to a
/// store (alongside the WAL — stores carry any number of listeners);
/// Drain() hands the accumulated delta to the consumer and starts a
/// fresh cycle.
///
/// Events that cannot change any mining input are ignored: annotations,
/// quality scores and ACL mutations (mining reads the log unfiltered;
/// visibility applies at query time). Flag flips other than
/// kFlagDeleted are likewise ignored — schema/staleness flags do not
/// feed sessionization, transactions, popularity or clustering.
///
/// The miner writes session assignments back into the store as part of
/// every run; a ScopedSuppress around that write-back keeps the tracker
/// from observing its owner's own writes as external dirt.
class ChangeTracker : public StoreListener {
 public:
  ChangeTracker() = default;
  ~ChangeTracker() override;

  ChangeTracker(const ChangeTracker&) = delete;
  ChangeTracker& operator=(const ChangeTracker&) = delete;

  /// Subscribes to `store` (which must outlive the tracker or the
  /// tracker must be destroyed first — destruction detaches).
  void Attach(QueryStore* store);
  void Detach();

  /// Returns the accumulated dirty sets and clears them.
  ChangeDelta Drain();

  const ChangeDelta& pending() const { return pending_; }

  /// RAII guard silencing the tracker while its owner writes back
  /// derived state (session assignments) it already accounts for.
  class ScopedSuppress {
   public:
    explicit ScopedSuppress(ChangeTracker* tracker) : tracker_(tracker) {
      ++tracker_->suppress_depth_;
    }
    ~ScopedSuppress() { --tracker_->suppress_depth_; }
    ScopedSuppress(const ScopedSuppress&) = delete;
    ScopedSuppress& operator=(const ScopedSuppress&) = delete;

   private:
    ChangeTracker* tracker_;
  };

  // --- StoreListener -------------------------------------------------------
  void OnAppend(const QueryRecord& record) override;
  void OnRewrite(QueryId id, const std::string& new_text) override;
  void OnAnnotate(QueryId id, const Annotation& annotation) override;
  void OnFlagChange(QueryId id, QueryFlags flag, bool set) override;
  void OnSetSession(QueryId id, SessionId session) override;
  void OnSetQuality(QueryId id, double quality) override;
  void OnDelete(QueryId id) override;
  void OnSyncOutputSignature(QueryId id) override;
  void OnAclAddUser(const std::string& user,
                    const std::vector<std::string>& groups) override;
  void OnAclSetVisibility(QueryId id, Visibility visibility) override;

 private:
  bool Suppressed() const { return suppress_depth_ > 0; }

  QueryStore* store_ = nullptr;
  ChangeDelta pending_;
  int suppress_depth_ = 0;
};

}  // namespace cqms::storage

#endif  // CQMS_STORAGE_CHANGE_TRACKER_H_
