#ifndef CQMS_STORAGE_READ_VIEW_H_
#define CQMS_STORAGE_READ_VIEW_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/interner.h"
#include "storage/access_control.h"
#include "storage/epoch.h"
#include "storage/lsh_index.h"
#include "storage/query_record.h"
#include "storage/record_log.h"
#include "storage/scoring_columns.h"

namespace cqms::storage {

class QueryStore;
class ReadViewState;
class VisibilityCache;

/// The QueryStore's six feature posting lists as one copyable value.
/// The store maintains the live instance through Append / Rewrite /
/// Delete; publishing a read view copies it wholesale, so every lookup
/// below works identically against the live store and a frozen view.
/// Symbol-keyed maps use the same interned ids the similarity
/// signatures carry (see QueryStore's index commentary).
struct PostingIndex {
  std::unordered_map<Symbol, std::vector<QueryId>> by_table;
  std::unordered_map<Symbol, std::vector<QueryId>> by_attribute;
  std::unordered_map<std::string, std::vector<QueryId>> by_user;
  std::unordered_map<Symbol, std::vector<QueryId>> by_keyword;
  std::unordered_map<uint64_t, std::vector<QueryId>> by_skeleton;
  std::unordered_map<uint64_t, std::vector<QueryId>> by_fingerprint;

  // Lookups mirror the QueryStore query API; unknown keys (including
  // kInvalidSymbol from probing strings the interner never saw) return
  // a shared empty list.
  const std::vector<QueryId>& UsingTable(const std::string& table) const;
  const std::vector<QueryId>& UsingTableSymbol(Symbol table) const;
  std::vector<QueryId> UsingAnyTable(
      const std::vector<std::string>& tables) const;
  std::vector<QueryId> UsingAnyTableSymbol(
      const std::vector<Symbol>& tables) const;
  const std::vector<QueryId>& UsingAttribute(
      const std::string& relation, const std::string& attribute) const;
  const std::vector<QueryId>& UsingAttributeSymbol(Symbol qualified) const;
  const std::vector<QueryId>& ByUser(const std::string& user) const;
  const std::vector<QueryId>& WithKeyword(const std::string& word) const;
  const std::vector<QueryId>& WithKeywordSymbol(Symbol token) const;
  const std::vector<QueryId>& WithSkeleton(uint64_t skeleton_fp) const;
  uint64_t PopularityOf(uint64_t fingerprint) const;
};

/// Uniform read facade over either the live QueryStore or a published
/// ReadViewState, with the accessor names the meta-query planner uses —
/// the planner's one scoring pipeline serves both the single-threaded
/// live path and concurrent readers without branching per call site.
/// Cheap to copy (a handful of raw pointers); does not own or pin
/// anything — the caller keeps the underlying store or view alive
/// (typically via a PinnedView on the read path).
class StoreView {
 public:
  StoreView() = default;
  /// Live-store facade; defined in query_store.h (needs the complete
  /// QueryStore).
  explicit StoreView(const QueryStore& store);
  /// Frozen-view facade; defined below ReadViewState.
  explicit StoreView(const ReadViewState& view);

  // Posting-list lookups — straight delegation, no branching.
  const std::vector<QueryId>& QueriesUsingTable(const std::string& table) const {
    return postings_->UsingTable(table);
  }
  const std::vector<QueryId>& QueriesUsingTableSymbol(Symbol table) const {
    return postings_->UsingTableSymbol(table);
  }
  std::vector<QueryId> QueriesUsingAnyTable(
      const std::vector<std::string>& tables) const {
    return postings_->UsingAnyTable(tables);
  }
  std::vector<QueryId> QueriesUsingAnyTableSymbol(
      const std::vector<Symbol>& tables) const {
    return postings_->UsingAnyTableSymbol(tables);
  }
  const std::vector<QueryId>& QueriesUsingAttribute(
      const std::string& relation, const std::string& attribute) const {
    return postings_->UsingAttribute(relation, attribute);
  }
  const std::vector<QueryId>& QueriesByUser(const std::string& user) const {
    return postings_->ByUser(user);
  }
  const std::vector<QueryId>& QueriesWithKeyword(const std::string& word) const {
    return postings_->WithKeyword(word);
  }
  const std::vector<QueryId>& QueriesWithKeywordSymbol(Symbol token) const {
    return postings_->WithKeywordSymbol(token);
  }
  const std::vector<QueryId>& QueriesWithSkeleton(uint64_t skeleton_fp) const {
    return postings_->WithSkeleton(skeleton_fp);
  }
  uint64_t PopularityOf(uint64_t fingerprint) const {
    return postings_->PopularityOf(fingerprint);
  }
  std::vector<QueryId> LshCandidates(const MinHashSketch& sketch,
                                     size_t probe_bands = 0,
                                     LshProbeScratch* scratch = nullptr) const {
    return lsh_->Candidates(sketch, probe_bands, scratch);
  }

  const ScoringColumns& scoring() const { return *scoring_; }
  const LshIndex& lsh() const { return *lsh_; }
  const AccessControl& acl() const { return *acl_; }

  // The only accessors that branch on live-vs-view (the record log and
  // its scalars live inside whichever object backs the facade); defined
  // in query_store.h.
  const QueryRecord* Get(QueryId id) const;
  size_t size() const;
  Micros max_timestamp() const;

  /// The live store behind this facade, or null when it wraps a view.
  const QueryStore* live_store() const { return store_; }
  /// The frozen view behind this facade, or null when it wraps the
  /// live store.
  const ReadViewState* view() const { return view_; }

 private:
  const QueryStore* store_ = nullptr;
  const ReadViewState* view_ = nullptr;
  const PostingIndex* postings_ = nullptr;
  const ScoringColumns* scoring_ = nullptr;
  const LshIndex* lsh_ = nullptr;
  const AccessControl* acl_ = nullptr;
};

/// One published, immutable snapshot of everything the read path
/// touches: the record log (as shared_ptr copies — records themselves
/// are shared with the store, copy-on-write protected), the scoring
/// columns, the six posting lists, the LSH index and the ACL. Built by
/// QueryStore::PublishView on the writer thread; after publication it
/// is never mutated (the per-viewer visibility-cache pool below is
/// internally synchronized memoization, not state), so any number of
/// readers may execute meta-queries against it concurrently with zero
/// coordination. Lifetime: the store keeps the latest view alive and
/// retires predecessors through epoch-based reclamation (see
/// EpochDomain); long-lived consumers hold a shared_ptr instead
/// (QueryStore::SharedView).
///
/// Not in the snapshot: the feature-relation database (SQL meta-queries
/// stay a live-store feature — see MetaQueryExecutor::Sql) and query
/// re-execution for query-by-data with `reexecute_on` set.
class ReadViewState {
 public:
  ReadViewState() = default;
  ~ReadViewState();
  ReadViewState(const ReadViewState&) = delete;
  ReadViewState& operator=(const ReadViewState&) = delete;

  /// Publish sequence number (1 = the first view the store published).
  uint64_t sequence() const { return sequence_; }
  /// Store mutations applied when this view was published — the
  /// prefix-consistency stamp the stress oracle replays to.
  uint64_t mutations() const { return mutations_; }

  size_t size() const { return records_.size(); }
  const RecordLog& records() const { return records_; }
  const QueryRecord* Get(QueryId id) const {
    if (id < 0 || static_cast<size_t>(id) >= records_.size()) return nullptr;
    return records_.ptr(static_cast<size_t>(id)).get();
  }
  Micros max_timestamp() const { return max_timestamp_; }
  const PostingIndex& postings() const { return postings_; }
  const ScoringColumns& scoring() const { return scoring_; }
  const LshIndex& lsh() const { return lsh_; }
  const AccessControl& acl() const { return acl_; }

  /// The memoizing visibility cache for `viewer` on the calling thread.
  /// Pooled per (viewer, thread) so two readers serving the same viewer
  /// never share one cache's mutable memo state; the mutex guards only
  /// the pool lookup, never the scoring loop. Caches live as long as
  /// the view and stay warm across that thread's queries against it;
  /// the view's ACL is frozen, so they never self-invalidate.
  VisibilityCache& CacheFor(const std::string& viewer) const;

 private:
  friend class QueryStore;

  uint64_t sequence_ = 0;
  uint64_t mutations_ = 0;
  Micros max_timestamp_ = 0;
  RecordLog records_;
  PostingIndex postings_;
  ScoringColumns scoring_;
  LshIndex lsh_;
  AccessControl acl_;

  mutable std::mutex cache_mu_;
  mutable std::map<std::pair<std::string, std::thread::id>,
                   std::unique_ptr<VisibilityCache>>
      caches_;
};

inline StoreView::StoreView(const ReadViewState& view)
    : view_(&view),
      postings_(&view.postings()),
      scoring_(&view.scoring()),
      lsh_(&view.lsh()),
      acl_(&view.acl()) {}

/// RAII handle of one pinned published view: holds an EpochDomain slot
/// for its lifetime, which guarantees the view (and everything it
/// references) stays allocated while the reader executes against it.
/// Acquire via QueryStore::PinView — lock-free, a few atomic ops —
/// scope it to one meta-query execution, and let it unpin on
/// destruction. A pinned slot blocks reclamation of every later-retired
/// view too, so long-running consumers (miner cycles, checkpoint
/// backups) should hold QueryStore::SharedView instead.
class PinnedView {
 public:
  PinnedView() = default;
  PinnedView(EpochDomain* domain, size_t slot, const ReadViewState* view)
      : domain_(domain), slot_(slot), view_(view) {}
  PinnedView(PinnedView&& other) noexcept
      : domain_(other.domain_), slot_(other.slot_), view_(other.view_) {
    other.domain_ = nullptr;
    other.view_ = nullptr;
  }
  PinnedView& operator=(PinnedView&& other) noexcept {
    if (this != &other) {
      Release();
      domain_ = other.domain_;
      slot_ = other.slot_;
      view_ = other.view_;
      other.domain_ = nullptr;
      other.view_ = nullptr;
    }
    return *this;
  }
  PinnedView(const PinnedView&) = delete;
  PinnedView& operator=(const PinnedView&) = delete;
  ~PinnedView() { Release(); }

  const ReadViewState* get() const { return view_; }
  const ReadViewState& operator*() const { return *view_; }
  const ReadViewState* operator->() const { return view_; }
  explicit operator bool() const { return view_ != nullptr; }

 private:
  void Release() {
    if (domain_ != nullptr) domain_->Unpin(slot_);
    domain_ = nullptr;
    view_ = nullptr;
  }

  EpochDomain* domain_ = nullptr;
  size_t slot_ = 0;
  const ReadViewState* view_ = nullptr;
};

/// Memoizes visibility decisions for one viewer over one StoreView
/// (live store or frozen view). The ACL part of a visibility check —
/// per-query visibility level plus the group-set intersection for
/// kGroup queries — is resolved at most once per query id and cached in
/// a flat byte vector; the deleted-tombstone flag is re-read from the
/// scoring columns on every call so deletions take effect immediately.
/// Safe to keep alive across searches and ACL mutations on the live
/// path: every call compares the ACL epoch against the snapshot taken
/// when the cache was (re)filled and drops all memoized decisions on
/// mismatch, so a viewer whose group membership changed is re-checked
/// from scratch. (A view's ACL is frozen, so view-backed caches never
/// invalidate.) Semantics match QueryStore::Visible exactly.
///
/// Not internally synchronized: one cache belongs to one thread at a
/// time — the live path keeps them call-local, the view path pools
/// them per (viewer, thread) (ReadViewState::CacheFor).
class VisibilityCache {
 public:
  VisibilityCache(StoreView view, std::string viewer)
      : view_(view), viewer_(std::move(viewer)) {}

  /// Compatibility constructor over the live store; defined in
  /// read_view.cc (needs the complete QueryStore).
  VisibilityCache(const QueryStore* store, std::string viewer);

  /// True when the viewer may see `record` (not deleted, ACL passes).
  bool Visible(const QueryRecord& record) const {
    if (record.HasFlag(kFlagDeleted)) return false;
    return AclVisible(record.id);
  }

  /// Columnar variant: reads the tombstone flag from the scoring columns
  /// instead of the record struct — the scoring-loop fast path.
  bool VisibleId(QueryId id) const {
    if ((view_.scoring().flags(id) & kFlagDeleted) != 0) return false;
    return AclVisible(id);
  }

  const std::string& viewer() const { return viewer_; }

  /// Memo-hit / memo-miss tallies for AclVisible, monotonically
  /// increasing over the cache's lifetime. Plain (non-atomic) counters:
  /// a cache is (viewer, thread)-owned, so the planner reads deltas on
  /// the same thread and flushes them to the global registry itself.
  uint64_t acl_hits() const { return acl_hits_; }
  uint64_t acl_misses() const { return acl_misses_; }

 private:
  bool AclVisible(QueryId id) const;

  static constexpr uint8_t kUnknown = 0, kVisible = 1, kHidden = 2;

  StoreView view_;
  std::string viewer_;
  /// ACL epoch the memoized entries were computed under.
  mutable uint64_t acl_epoch_ = ~0ULL;
  /// The viewer's interned Symbol (kInvalidSymbol when the viewer never
  /// authored a logged query) — lets the owner check compare one u32
  /// against the columns' owner Symbol instead of touching the record
  /// log for a string compare. Refreshed whenever acl_ok_ grows, which
  /// covers the viewer's name being interned by their own first Append.
  mutable Symbol viewer_symbol_ = kInvalidSymbol;
  /// Per-id ACL decision (kUnknown / kVisible / kHidden); excludes the
  /// deleted flag, which is never cached.
  mutable std::vector<uint8_t> acl_ok_;
  /// Per-owner group-sharing results, shared across that owner's
  /// queries; keyed by the owner's interned Symbol.
  mutable std::unordered_map<Symbol, bool> shares_group_;
  mutable uint64_t acl_hits_ = 0;
  mutable uint64_t acl_misses_ = 0;
};

}  // namespace cqms::storage

#endif  // CQMS_STORAGE_READ_VIEW_H_
