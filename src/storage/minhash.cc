#include "storage/minhash.h"

#include <algorithm>

#include "common/hash.h"
#include "common/interner.h"
#include "common/sorted_vector.h"
#include "common/string_util.h"
#include "sql/token.h"
#include "storage/query_record.h"

namespace cqms::storage {

namespace {

/// Per-field salts keep "watertemp" the table distinct from "watertemp"
/// the text token: the element hash mixes (salt << 32) | symbol, and
/// Symbols occupy the low 32 bits.
enum FieldSalt : uint64_t {
  kSaltTable = 1,
  kSaltPredicateSkeleton = 2,
  kSaltAttribute = 3,
  kSaltProjection = 4,
  kSaltTextToken = 5,
};

uint64_t ElementHash(uint64_t salt, Symbol symbol) {
  return HashMix((salt << 32) | static_cast<uint64_t>(symbol));
}

void AppendElements(uint64_t salt, const std::vector<Symbol>& symbols,
                    std::vector<uint64_t>* out) {
  for (Symbol s : symbols) out->push_back(ElementHash(salt, s));
}

/// True for text tokens that are SQL reserved words. Hash-derived
/// transient Symbols resolve to an empty name and pass through — fine,
/// every keyword is interned by the first logged query, so real probes
/// see the real ids. The reverse Symbol->string lookup costs one
/// uncontended interner mutex round-trip per token, paid only at
/// sketch-build time (append/probe construction, where parsing already
/// dominates) — never on the kNN compare path.
bool IsKeywordToken(Symbol s) {
  std::string_view name = GlobalInterner().NameOf(s);
  return !name.empty() && sql::IsReservedKeyword(ToUpper(name));
}

}  // namespace

std::vector<uint64_t> SketchElements(const SimilaritySignature& signature) {
  std::vector<uint64_t> elements;
  elements.reserve(signature.tables.size() + signature.predicate_skeletons.size() +
                   signature.attributes.size() + signature.projections.size() +
                   signature.text_tokens.size());
  AppendElements(kSaltTable, signature.tables, &elements);
  AppendElements(kSaltPredicateSkeleton, signature.predicate_skeletons, &elements);
  AppendElements(kSaltAttribute, signature.attributes, &elements);
  AppendElements(kSaltProjection, signature.projections, &elements);
  for (Symbol s : signature.text_tokens) {
    if (!IsKeywordToken(s)) elements.push_back(ElementHash(kSaltTextToken, s));
  }
  SortUnique(&elements);
  return elements;
}

MinHashSketch ComputeMinHashSketch(const SimilaritySignature& signature) {
  MinHashSketch sketch;
  for (uint64_t element : SketchElements(signature)) {
    // Kirsch-Mitzenmacher: g_i(e) = h1(e) + (i+1) * h2(e), with h2
    // forced odd so the stride is a bijection of the 64-bit ring.
    uint64_t h1 = HashMix(element);
    uint64_t h2 = HashMix(element ^ 0x9e3779b97f4a7c15ULL) | 1ULL;
    uint64_t g = h1;
    for (size_t i = 0; i < MinHashSketch::kSize; ++i) {
      g += h2;
      sketch.mins[i] = std::min(sketch.mins[i], g);
    }
  }
  sketch.valid = true;
  return sketch;
}

double EstimateJaccard(const MinHashSketch& a, const MinHashSketch& b) {
  size_t matches = 0;
  for (size_t i = 0; i < MinHashSketch::kSize; ++i) {
    if (a.mins[i] == b.mins[i]) ++matches;
  }
  return static_cast<double>(matches) / static_cast<double>(MinHashSketch::kSize);
}

}  // namespace cqms::storage
