#ifndef CQMS_STORAGE_DURABLE_STORE_H_
#define CQMS_STORAGE_DURABLE_STORE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/env.h"
#include "storage/query_store.h"
#include "storage/store_listener.h"
#include "storage/wal.h"

namespace cqms::storage {

struct DurabilityOptions {
  /// MaybeCheckpoint() rewrites the snapshot once the WAL grows past
  /// either threshold (bytes, or records since the last checkpoint /
  /// open). Crossing neither leaves the WAL accumulating — recovery
  /// stays correct, just replays more.
  uint64_t checkpoint_wal_bytes = 4ull << 20;
  uint64_t checkpoint_wal_records = 10000;
  /// fsync(2) after every WAL record. Off by default: the library's own
  /// tests and benches don't need power-loss guarantees, and a flush
  /// already survives the process dying.
  bool fsync_each_record = false;
  /// Filesystem all I/O goes through; null = Env::Default() (POSIX).
  /// Tests inject a FaultInjectingEnv (fault_env.h) here to exercise
  /// crash and error paths deterministically.
  Env* env = nullptr;
  /// After a due checkpoint fails, MaybeCheckpoint skips the next
  /// min(2^(failures-1), cap) calls before retrying, so a persistently
  /// failing disk is not hammered with a full snapshot encode every
  /// maintenance cycle. 0 disables the backoff (every call retries).
  uint32_t checkpoint_backoff_cap = 32;
  /// Caps on retired WAL segments kept for replication catch-up (see
  /// SetShippingHook): total bytes and segment count. A follower that
  /// falls behind the retained window re-bootstraps from a snapshot
  /// stream instead of holding the primary's disk hostage.
  uint64_t repl_backlog_max_bytes = 256ull << 20;
  uint32_t repl_backlog_max_segments = 8;
};

/// Lets a replication shipper tail the WAL without a second disk read.
/// Both methods are called on the store's writer thread; OnWalFrame must
/// be cheap (hand the frame to another thread, don't write sockets).
class WalShippingHook {
 public:
  virtual ~WalShippingHook() = default;
  /// One durably appended WAL frame payload (varint sequence included),
  /// exactly the bytes ReplayWal would see.
  virtual void OnWalFrame(uint64_t sequence, std::string_view frame) = 0;
  /// Lowest sequence any registered follower still needs (min acked
  /// across followers, plus one); UINT64_MAX when no follower is
  /// registered. Checkpoints drop retired segments below this.
  virtual uint64_t MinRequiredSequence() = 0;
};

/// One retired WAL generation retained for follower catch-up.
struct WalSegmentInfo {
  std::string path;
  uint64_t min_sequence = 0;  ///< First frame's sequence (min > max: empty).
  uint64_t max_sequence = 0;  ///< Last frame's sequence.
  uint64_t bytes = 0;
};

/// Crash-safe persistence for one QueryStore: binary snapshot v2 plus a
/// write-ahead log of every mutation since that snapshot.
///
///   DurableStore durable(&store, dir);
///   CQMS_RETURN_IF_ERROR(durable.Open());   // restore + start logging
///   ... any mutations through the store's normal API ...
///   durable.Checkpoint();                   // fresh snapshot, WAL rotated
///
/// Open() bulk-loads `<dir>/snapshot.cqms` (v2 binary, or a legacy v1
/// text snapshot — the migration path), replays the committed prefix of
/// the retired and active WALs, truncates any torn tail, then registers
/// itself as the store's mutation listener so every subsequent Append /
/// rewrite / annotation / flag / quality / delete / ACL change is framed
/// into the WAL before control returns to the caller.
///
/// Checkpoint() keeps one previous generation alive: the new snapshot
/// is published atomically while the old one is renamed to
/// `snapshot.cqms.1`, and the WAL is rotated to `wal.log.1` instead of
/// truncated. If the newest snapshot is later found corrupt (CRC), Open
/// falls back to the previous generation and replays both logs — the
/// monotonic sequence stamps make the longer replay idempotent — so a
/// single bad sector costs nothing. Stale `.tmp` files from interrupted
/// saves are swept on Open.
///
/// Single-threaded like QueryStore itself. The store must outlive the
/// DurableStore; destruction detaches the listener.
class DurableStore : public StoreListener {
 public:
  /// `dir` is created on Open() when missing.
  DurableStore(QueryStore* store, std::string dir,
               DurabilityOptions options = {});
  ~DurableStore() override;

  DurableStore(const DurableStore&) = delete;
  DurableStore& operator=(const DurableStore&) = delete;

  /// Restores `store` — which must be pristine: no records and no ACL
  /// mutations, or pre-listener state would silently evaporate at the
  /// next recovery — from disk and attaches the WAL. Returns the store
  /// to the exact committed state of the last run: snapshot + WAL-tail
  /// = crash recovery.
  Status Open();

  /// Writes a fresh v2 snapshot (atomic, retaining the previous
  /// generation) and rotates the WAL.
  Status Checkpoint();

  /// Checkpoint() iff the WAL crossed the configured thresholds or a
  /// WAL error is latched (checkpointing repairs it). `checkpointed`
  /// (optional) reports whether a checkpoint actually ran. After a
  /// failure, retries are paced by the capped exponential backoff
  /// (see DurabilityOptions); a backed-off call returns the last
  /// checkpoint error so operators still see the condition.
  Status MaybeCheckpoint(bool* checkpointed = nullptr);

  /// Stats of the active-log replay performed by Open() (how much tail
  /// was recovered, whether a torn write was discarded).
  const WalReplayStats& replay_stats() const { return replay_stats_; }

  uint64_t wal_bytes() const { return wal_.bytes(); }
  uint64_t wal_records() const {
    return replayed_records_ + wal_.appended_records();
  }

  /// First WAL append failure since the last successful checkpoint, if
  /// any (OK otherwise). A failed append leaves the in-memory store
  /// ahead of the log; the next Checkpoint — which MaybeCheckpoint
  /// forces while this is set — snapshots that state and restores full
  /// durability. kResourceExhausted here means the disk is full: the
  /// store keeps serving reads and in-memory writes (read_only() below)
  /// and heals automatically once a later checkpoint succeeds.
  const Status& wal_error() const { return deferred_error_; }

  /// True while a WAL error is latched: new mutations apply in memory
  /// but are NOT durable until a checkpoint succeeds. Callers that must
  /// not acknowledge non-durable writes should refuse writes while set.
  /// Readable from any thread (atomic mirror of the latched error, so
  /// the server's stats path can poll it off the writer thread).
  bool read_only() const { return read_only_.load(std::memory_order_relaxed); }

  /// True when Open() could not use the newest snapshot (missing or
  /// corrupt) and recovered from the retained previous generation.
  bool recovered_from_fallback() const { return recovered_from_fallback_; }

  /// Consecutive MaybeCheckpoint failures (0 after a success), the
  /// number of calls the backoff will still skip, and the cumulative
  /// count of backed-off calls — surfaced in MaintenanceReport and over
  /// the wire in StatsResult. Atomic so stats snapshots taken off the
  /// writer thread race cleanly with checkpointing.
  uint32_t checkpoint_failure_streak() const {
    return checkpoint_failure_streak_.load(std::memory_order_relaxed);
  }
  uint64_t checkpoint_backoff_remaining() const {
    return checkpoint_backoff_remaining_.load(std::memory_order_relaxed);
  }
  uint64_t checkpoints_backed_off() const {
    return checkpoints_backed_off_.load(std::memory_order_relaxed);
  }

  const std::string& snapshot_path() const { return snapshot_path_; }
  const std::string& wal_path() const { return wal_path_; }
  const std::string& prev_snapshot_path() const {
    return prev_snapshot_path_;
  }
  const std::string& prev_wal_path() const { return prev_wal_path_; }

  // --- replication support ---------------------------------------------------

  /// Registers (or clears, with null) the WAL shipping hook. While a
  /// hook is set, checkpoints retain retired WAL segments the hook still
  /// needs (bounded by DurabilityOptions::repl_backlog_*) instead of
  /// overwriting `wal.log.1`. Writer-thread only; clear the hook before
  /// destroying the shipper.
  void SetShippingHook(WalShippingHook* hook) { shipping_hook_ = hook; }

  /// Highest sequence ever stamped into the WAL (identical to the value
  /// the next checkpoint snapshot will cover).
  uint64_t last_sequence() const { return last_sequence_; }

  /// Highest follower position still servable by streaming retained WAL
  /// frames: a subscriber at `from_sequence >= shippable_floor()` can
  /// catch up from disk; one below it must snapshot-bootstrap. (A hint:
  /// rare in-window gaps — e.g. appends lost to a latched WAL failure —
  /// surface as follower-side gap detection and force a snapshot.)
  uint64_t shippable_floor() const {
    return retired_segments_.empty() ? active_base_sequence_
                                     : retired_segments_.back().min_sequence - 1;
  }

  /// Retired segments currently retained, newest first
  /// (`retired_wal_segments()[0]` is `wal.log.1`).
  const std::vector<WalSegmentInfo>& retired_wal_segments() const {
    return retired_segments_;
  }

  /// Total bytes of retained retired segments (the
  /// `cqms_repl_backlog_bytes` gauge's value).
  uint64_t repl_backlog_bytes() const { return backlog_bytes_; }

  Env* env() const { return env_; }

  // --- StoreListener (the store calls these; not for direct use) -----------
  void OnAppend(const QueryRecord& record) override;
  void OnRewrite(QueryId id, const std::string& new_text) override;
  void OnAnnotate(QueryId id, const Annotation& annotation) override;
  void OnFlagChange(QueryId id, QueryFlags flag, bool set) override;
  void OnSetSession(QueryId id, SessionId session) override;
  void OnSetQuality(QueryId id, double quality) override;
  void OnDelete(QueryId id) override;
  void OnAclAddUser(const std::string& user,
                    const std::vector<std::string>& groups) override;
  void OnAclSetVisibility(QueryId id, Visibility visibility) override;

 private:
  void Log(std::string_view op_payload);
  void SweepStaleTmpFiles();
  /// Checkpoint() body; the public wrapper adds duration / failure
  /// instrumentation around it.
  Status CheckpointImpl();
  /// Writes the encoded snapshot to a tmp file, preserves the previous
  /// generation, publishes the new one and syncs the directory.
  Status PublishSnapshot(const std::string& encoded);
  /// `<dir>/wal.log.<index>` (index >= 1; 1 is the newest retired).
  std::string RetiredWalPath(uint32_t index) const;
  /// The checkpoint's retention step: drops retired segments no longer
  /// needed (or over the caps), shifts the kept ones one index up, and
  /// records the just-rotated active log as the new `wal.log.1`.
  Status RetireActiveWal();
  void UpdateBacklogGauge();

  QueryStore* store_;
  std::string dir_;
  std::string snapshot_path_;
  std::string wal_path_;
  std::string prev_snapshot_path_;
  std::string prev_wal_path_;
  DurabilityOptions options_;
  Env* env_;
  WalWriter wal_;
  WalReplayStats replay_stats_;
  uint64_t replayed_records_ = 0;
  /// Monotonic mutation sequence (never reset, stamped into every WAL
  /// frame and into each checkpoint snapshot) — what makes recovery
  /// idempotent when a crash lands between snapshot write and WAL
  /// rotation: replay skips frames the snapshot already covers.
  uint64_t last_sequence_ = 0;
  bool open_ = false;
  bool recovered_from_fallback_ = false;
  /// First WAL append error since the last successful checkpoint —
  /// listener callbacks cannot return one, so it is surfaced via
  /// wal_error() and repaired by the next checkpoint. Written only on
  /// the writer thread; read_only_ mirrors its ok()-ness for readers on
  /// other threads.
  Status deferred_error_;
  std::atomic<bool> read_only_{false};
  // Checkpoint retry pacing (see MaybeCheckpoint). Mutated only on the
  // writer thread; atomic for cross-thread stats reads.
  std::atomic<uint32_t> checkpoint_failure_streak_{0};
  std::atomic<uint64_t> checkpoint_backoff_remaining_{0};
  std::atomic<uint64_t> checkpoints_backed_off_{0};
  Status last_checkpoint_error_;
  /// Replication shipping (writer thread only; see SetShippingHook).
  WalShippingHook* shipping_hook_ = nullptr;
  /// Retained retired WAL generations, newest first (index i maps to
  /// `wal.log.(i+1)` on disk).
  std::vector<WalSegmentInfo> retired_segments_;
  uint64_t backlog_bytes_ = 0;
  /// Sequence the active WAL starts after: frames in it are
  /// (active_base_sequence_, last_sequence_]. Advanced at checkpoint.
  uint64_t active_base_sequence_ = 0;
};

}  // namespace cqms::storage

#endif  // CQMS_STORAGE_DURABLE_STORE_H_
