#ifndef CQMS_STORAGE_DURABLE_STORE_H_
#define CQMS_STORAGE_DURABLE_STORE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/query_store.h"
#include "storage/store_listener.h"
#include "storage/wal.h"

namespace cqms::storage {

struct DurabilityOptions {
  /// MaybeCheckpoint() rewrites the snapshot once the WAL grows past
  /// either threshold (bytes, or records since the last checkpoint /
  /// open). Crossing neither leaves the WAL accumulating — recovery
  /// stays correct, just replays more.
  uint64_t checkpoint_wal_bytes = 4ull << 20;
  uint64_t checkpoint_wal_records = 10000;
  /// fsync(2) after every WAL record. Off by default: the library's own
  /// tests and benches don't need power-loss guarantees, and a flush
  /// already survives the process dying.
  bool fsync_each_record = false;
};

/// Crash-safe persistence for one QueryStore: binary snapshot v2 plus a
/// write-ahead log of every mutation since that snapshot.
///
///   DurableStore durable(&store, dir);
///   CQMS_RETURN_IF_ERROR(durable.Open());   // restore + start logging
///   ... any mutations through the store's normal API ...
///   durable.Checkpoint();                   // fresh snapshot, WAL reset
///
/// Open() bulk-loads `<dir>/snapshot.cqms` (v2 binary, or a legacy v1
/// text snapshot — the migration path), replays the committed prefix of
/// `<dir>/wal.log`, truncates any torn tail, then registers itself as
/// the store's mutation listener so every subsequent Append / rewrite /
/// annotation / flag / quality / delete / ACL change is framed into the
/// WAL before control returns to the caller. Checkpoint() writes a new
/// snapshot atomically and truncates the WAL, bounding recovery replay;
/// the maintenance pass calls MaybeCheckpoint() so checkpointing rides
/// the existing background cycle.
///
/// Single-threaded like QueryStore itself. The store must outlive the
/// DurableStore; destruction detaches the listener.
class DurableStore : public StoreListener {
 public:
  /// `dir` is created on Open() when missing.
  DurableStore(QueryStore* store, std::string dir,
               DurabilityOptions options = {});
  ~DurableStore() override;

  DurableStore(const DurableStore&) = delete;
  DurableStore& operator=(const DurableStore&) = delete;

  /// Restores `store` — which must be pristine: no records and no ACL
  /// mutations, or pre-listener state would silently evaporate at the
  /// next recovery — from disk and attaches the WAL. Returns the store
  /// to the exact committed state of the last run: snapshot + WAL-tail
  /// = crash recovery.
  Status Open();

  /// Writes a fresh v2 snapshot (atomic) and truncates the WAL.
  Status Checkpoint();

  /// Checkpoint() iff the WAL crossed the configured thresholds or a
  /// WAL error is latched (checkpointing repairs it). `checkpointed`
  /// (optional) reports whether a checkpoint actually ran.
  Status MaybeCheckpoint(bool* checkpointed = nullptr);

  /// Stats of the replay performed by Open() (how much tail was
  /// recovered, whether a torn write was discarded).
  const WalReplayStats& replay_stats() const { return replay_stats_; }

  uint64_t wal_bytes() const { return wal_.bytes(); }
  uint64_t wal_records() const {
    return replayed_records_ + wal_.appended_records();
  }

  /// First WAL append failure since the last successful checkpoint, if
  /// any (OK otherwise). A failed append leaves the in-memory store
  /// ahead of the log; the next Checkpoint — which MaybeCheckpoint
  /// forces while this is set — snapshots that state and restores full
  /// durability.
  const Status& wal_error() const { return deferred_error_; }

  const std::string& snapshot_path() const { return snapshot_path_; }
  const std::string& wal_path() const { return wal_path_; }

  // --- StoreListener (the store calls these; not for direct use) -----------
  void OnAppend(const QueryRecord& record) override;
  void OnRewrite(QueryId id, const std::string& new_text) override;
  void OnAnnotate(QueryId id, const Annotation& annotation) override;
  void OnFlagChange(QueryId id, QueryFlags flag, bool set) override;
  void OnSetSession(QueryId id, SessionId session) override;
  void OnSetQuality(QueryId id, double quality) override;
  void OnDelete(QueryId id) override;
  void OnAclAddUser(const std::string& user,
                    const std::vector<std::string>& groups) override;
  void OnAclSetVisibility(QueryId id, Visibility visibility) override;

 private:
  void Log(std::string_view op_payload);

  QueryStore* store_;
  std::string dir_;
  std::string snapshot_path_;
  std::string wal_path_;
  DurabilityOptions options_;
  WalWriter wal_;
  WalReplayStats replay_stats_;
  uint64_t replayed_records_ = 0;
  /// Monotonic mutation sequence (never reset, stamped into every WAL
  /// frame and into each checkpoint snapshot) — what makes recovery
  /// idempotent when a crash lands between snapshot write and WAL
  /// truncation: replay skips frames the snapshot already covers.
  uint64_t last_sequence_ = 0;
  bool open_ = false;
  /// First WAL append error since the last successful checkpoint —
  /// listener callbacks cannot return one, so it is surfaced via
  /// wal_error() and repaired by the next checkpoint.
  Status deferred_error_;
};

}  // namespace cqms::storage

#endif  // CQMS_STORAGE_DURABLE_STORE_H_
