#include "storage/epoch.h"

#include <algorithm>
#include <functional>
#include <thread>

namespace cqms::storage {

namespace {

/// Spreads concurrent pinners across the slot array so they do not all
/// CAS-contend on slot 0. Any per-thread value works; the thread id
/// hash is stable and free.
size_t StartSlotForThisThread() {
  return std::hash<std::thread::id>{}(std::this_thread::get_id()) %
         EpochDomain::kMaxSlots;
}

}  // namespace

size_t EpochDomain::TryPin() {
  const size_t start = StartSlotForThisThread();
  for (size_t i = 0; i < kMaxSlots; ++i) {
    const size_t s = (start + i) % kMaxSlots;
    uint64_t idle = 0;
    uint64_t e = global_epoch_.load(std::memory_order_seq_cst);
    if (slots_[s].epoch.compare_exchange_strong(idle, e,
                                                std::memory_order_seq_cst)) {
      // Re-validate: the writer may have advanced the epoch between our
      // load and the stamp. Re-stamp until the slot matches the global
      // epoch we last read, so the writer's min-active scan can never
      // overlook this pin when deciding what to free. Converges in one
      // iteration unless the writer is publishing concurrently.
      for (;;) {
        uint64_t now = global_epoch_.load(std::memory_order_seq_cst);
        if (now == e) return s;
        slots_[s].epoch.store(now, std::memory_order_seq_cst);
        e = now;
      }
    }
  }
  return kNoSlot;
}

size_t EpochDomain::Pin() {
  for (;;) {
    size_t s = TryPin();
    if (s != kNoSlot) return s;
    // All kMaxSlots slots pinned — extremely unlikely outside stress
    // tests. Yield rather than grow: a bounded slot array keeps the
    // writer's reclamation scan O(1).
    std::this_thread::yield();
  }
}

void EpochDomain::Unpin(size_t slot) {
  slots_[slot].epoch.store(0, std::memory_order_seq_cst);
}

void EpochDomain::Retire(std::shared_ptr<const void> object) {
  // fetch_add returns the pre-increment value: the largest epoch a
  // reader still observing `object` can possibly have stamped.
  uint64_t retire_epoch = global_epoch_.fetch_add(1, std::memory_order_seq_cst);
  std::lock_guard<std::mutex> lock(retire_mu_);
  retired_.emplace_back(retire_epoch, std::move(object));
}

uint64_t EpochDomain::MinActiveEpoch() const {
  uint64_t min_active = ~uint64_t{0};
  for (const Slot& s : slots_) {
    uint64_t e = s.epoch.load(std::memory_order_seq_cst);
    if (e != 0) min_active = std::min(min_active, e);
  }
  return min_active;
}

void EpochDomain::Reclaim() {
  std::vector<std::shared_ptr<const void>> to_free;
  {
    std::lock_guard<std::mutex> lock(retire_mu_);
    if (retired_.empty()) return;
    const uint64_t min_active = MinActiveEpoch();
    auto keep = retired_.begin();
    for (auto it = retired_.begin(); it != retired_.end(); ++it) {
      if (it->first < min_active) {
        to_free.push_back(std::move(it->second));
      } else {
        if (keep != it) *keep = std::move(*it);
        ++keep;
      }
    }
    retired_.erase(keep, retired_.end());
  }
  // Destructors run outside the lock: freeing a large view snapshot
  // must not stall a concurrent Retire.
  to_free.clear();
}

size_t EpochDomain::retired_count() const {
  std::lock_guard<std::mutex> lock(retire_mu_);
  return retired_.size();
}

}  // namespace cqms::storage
