#ifndef CQMS_STORAGE_RECORD_BUILDER_H_
#define CQMS_STORAGE_RECORD_BUILDER_H_

#include <string>

#include "storage/query_record.h"

namespace cqms::storage {

/// How signature strings map to Symbols.
enum class SignatureMode {
  /// Unseen strings are added to the GlobalInterner — for records that
  /// will be stored (the interner must own every indexed token).
  kInterned,
  /// Unseen strings get a deterministic hash-derived id with the high bit
  /// set (real interner ids stay below 2^31), so transient probes built
  /// from arbitrary user input cannot grow the process-global interner.
  /// Known strings still resolve to their real ids, so probe-vs-log
  /// comparisons are exact; only probe-vs-probe overlap of two *never
  /// logged* tokens rides on a 31-bit hash (collisions negligible).
  kTransient,
};

/// Builds the parse-derived fields of a QueryRecord from raw SQL text:
/// parse tree, canonical text, skeleton, fingerprints, and syntactic
/// components. Queries that fail to parse still produce a record (raw
/// text only, `parse_failed() == true`) — the paper's profiler logs every
/// submission, and failed attempts feed the correction engine.
///
/// Runtime stats and the output summary are the caller's (profiler's)
/// responsibility. Use kTransient for probe records that are compared but
/// never appended (kNN-as-you-type, recommendations).
QueryRecord BuildRecordFromText(std::string text, std::string user,
                                Micros timestamp,
                                SignatureMode mode = SignatureMode::kInterned);

/// (Re)computes `record.signature` from the record's current text,
/// components and output summary. Idempotent; called by
/// BuildRecordFromText and by QueryStore::Append (for hand-built or
/// transient-signature records, after the profiler attached summaries).
void ComputeSimilaritySignature(QueryRecord* record,
                                SignatureMode mode = SignatureMode::kInterned);

/// Recomputes only the output-derived signature fields (`output_rows`,
/// `output_empty_computed`) from `record->summary`, leaving the token
/// vectors untouched. Requires a previously computed signature; Append
/// and RefreshStatistics use it to fold in a late-attached or replaced
/// summary without redoing tokenization and interning.
void UpdateOutputSignature(QueryRecord* record);

}  // namespace cqms::storage

#endif  // CQMS_STORAGE_RECORD_BUILDER_H_
