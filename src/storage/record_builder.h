#ifndef CQMS_STORAGE_RECORD_BUILDER_H_
#define CQMS_STORAGE_RECORD_BUILDER_H_

#include <string>

#include "storage/query_record.h"

namespace cqms::storage {

/// Builds the parse-derived fields of a QueryRecord from raw SQL text:
/// parse tree, canonical text, skeleton, fingerprints, and syntactic
/// components. Queries that fail to parse still produce a record (raw
/// text only, `parse_failed() == true`) — the paper's profiler logs every
/// submission, and failed attempts feed the correction engine.
///
/// Runtime stats and the output summary are the caller's (profiler's)
/// responsibility.
QueryRecord BuildRecordFromText(std::string text, std::string user,
                                Micros timestamp);

}  // namespace cqms::storage

#endif  // CQMS_STORAGE_RECORD_BUILDER_H_
