#ifndef CQMS_STORAGE_WAL_H_
#define CQMS_STORAGE_WAL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "common/binary_codec.h"
#include "common/status.h"
#include "storage/env.h"
#include "storage/query_store.h"

namespace cqms::storage {

/// Write-ahead log record types. Every durable QueryStore mutation maps
/// to exactly one op; in-place stats edits are not logged (the next
/// checkpoint snapshot captures them — see docs/persistence.md).
enum class WalOp : uint8_t {
  kAppend = 1,
  kRewrite = 2,
  kAnnotate = 3,
  kFlagSet = 4,
  kFlagClear = 5,
  kSetSession = 6,
  kSetQuality = 7,
  kDelete = 8,
  kAddUser = 9,
  kSetVisibility = 10,
};

/// Payload encoders for each op (op byte included). Kept public so the
/// durability tests can forge records when simulating corruption.
namespace wal {
std::string EncodeAppend(const QueryRecord& record);
/// `signature` is the record's post-rewrite signature: rewrites
/// preserve the output summary, whose hash contribution must ride in
/// the frame (summaries are not persisted, so replay cannot refold it).
std::string EncodeRewrite(QueryId id, std::string_view new_text,
                          const SimilaritySignature& signature);
std::string EncodeAnnotate(QueryId id, const Annotation& annotation);
std::string EncodeFlagChange(QueryId id, QueryFlags flag, bool set);
std::string EncodeSetSession(QueryId id, SessionId session);
std::string EncodeSetQuality(QueryId id, double quality);
std::string EncodeDelete(QueryId id);
std::string EncodeAddUser(const std::string& user,
                          const std::vector<std::string>& groups);
std::string EncodeSetVisibility(QueryId id, Visibility visibility);
}  // namespace wal

/// Appends framed binary records to the log file. Each frame is
/// [fixed32 payload length | fixed32 CRC32(payload) | payload], after an
/// 8-byte magic + version header, and is flushed to the OS on every
/// append (optionally fsync'd), so a record is recoverable the moment
/// the mutation returns. A crash mid-frame leaves a torn tail that
/// ReplayWal detects by length/CRC and discards.
///
/// Write-failure discipline: after any failed append (or failed
/// per-record fsync) the writer latches and refuses further appends
/// until Reset() rewrites the log. The mutation that failed to log
/// still applied in memory, so any later frame would be inconsistent
/// with the store replay reconstructs (stranded behind a lost append's
/// id, or re-animating state a lost delete removed); only a checkpoint
/// — which snapshots the in-memory state wholesale and resets the log
/// — may reopen it, and DurableStore forces one while a WAL error is
/// latched. A partial frame is also rolled back to the last good
/// boundary so the on-disk prefix stays cleanly framed.
class WalWriter {
 public:
  WalWriter() = default;
  ~WalWriter() { Close(); }
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Opens `path` for appending through `env` (null = Env::Default()),
  /// writing the header first when the file is new or empty. Callers
  /// replay (and truncate) the log before opening a writer on it. With
  /// per-record fsync the fresh header — and the log's very directory
  /// entry — are synced before returning, so the first acknowledged
  /// append cannot outlive the file it was written to.
  Status Open(const std::string& path, bool fsync_each_record = false,
              Env* env = nullptr);

  /// Truncates the log back to a fresh header — the recovery path out
  /// of the latched failed state; safe to retry after a failure (a
  /// transient open error does not wedge the writer).
  Status Reset();

  /// The checkpoint step after a successful snapshot publish: the
  /// current log is renamed to `retired_path` (replacing the previous
  /// generation) and a fresh log started. Keeping one retired
  /// generation lets recovery fall back to the previous snapshot plus
  /// a longer replay when the newest snapshot turns out corrupt. Like
  /// Reset, safe to retry after a failure.
  Status Rotate(const std::string& retired_path);

  void Close();
  bool is_open() const { return file_ != nullptr; }

  Status Append(std::string_view payload);

  /// Current log size in bytes (header included) and records appended
  /// since Open/Reset — the checkpoint-policy inputs.
  uint64_t bytes() const { return bytes_; }
  uint64_t appended_records() const { return appended_records_; }

 private:
  /// Starts a fresh truncated log with a header at path_ (Reset and the
  /// second half of Rotate).
  Status OpenFresh();

  std::string path_;
  Env* env_ = nullptr;
  std::unique_ptr<WritableFile> file_;
  bool fsync_each_record_ = false;
  /// Latched when a failed append could not be rolled back to a frame
  /// boundary; cleared by Open/Reset.
  bool failed_ = false;
  uint64_t bytes_ = 0;
  uint64_t appended_records_ = 0;
};

struct WalReplayStats {
  uint64_t records_applied = 0;
  /// Intact frames whose sequence number the snapshot already covers
  /// (a crash landed between snapshot write and WAL truncation).
  uint64_t records_skipped = 0;
  /// Highest sequence number seen in any intact frame (applied or
  /// skipped); 0 for an empty log.
  uint64_t max_sequence = 0;
  /// Lowest sequence number seen in any intact frame; 0 for an empty
  /// log. Retention bookkeeping uses it to describe retired segments.
  uint64_t min_sequence = 0;
  /// Header plus every intact frame — the offset a torn log should be
  /// truncated to.
  uint64_t bytes_valid = 0;
  /// Trailing bytes discarded as a torn write (0 for a clean log).
  uint64_t torn_bytes = 0;
};

/// Replays every intact record of the log at `path` into `store`, in
/// order. Each frame's payload begins with a varint sequence number
/// (assigned by DurableStore, monotonic across checkpoints); frames
/// with sequence <= `min_sequence` — mutations the loaded snapshot
/// already contains, left behind by a crash between snapshot write and
/// WAL truncation — are counted but not re-applied, which makes the
/// snapshot+replay pair idempotent. A torn final frame (truncated or
/// failing its CRC) marks the end of the committed prefix: it and
/// anything after it are reported in `torn_bytes` and not applied. An
/// intact frame that fails to decode or apply is real corruption —
/// including a record-type tag this build does not know, which a newer
/// writer could have produced — and fails the replay with kCorruption.
/// A missing file replays zero records successfully (fresh deployment).
Status ReplayWal(const std::string& path, QueryStore* store,
                 WalReplayStats* stats, uint64_t min_sequence = 0,
                 Env* env = nullptr);

/// Applies one WAL record payload to `store`. `r` is positioned just
/// past the varint sequence number (i.e. at the op byte). `path` labels
/// error messages. Shared by ReplayWal and the replication follower,
/// which applies frames shipped off the primary's live WAL.
Status ApplyWalRecord(BinaryReader* r, QueryStore* store,
                      const std::string& path);

/// Iterates the intact frames of the log at `path` without applying
/// them, calling `fn(sequence, frame)` in file order where `frame` is
/// the full frame payload (varint sequence included) exactly as
/// WalWriter::Append framed it. Stops early when `fn` returns false. A
/// torn tail ends the scan silently (same tolerance as ReplayWal); a
/// missing file scans zero frames successfully. Used by the WAL shipper
/// to stream catch-up frames to a subscribing follower.
Status ScanWalFrames(
    const std::string& path, Env* env,
    const std::function<bool(uint64_t sequence, std::string_view frame)>& fn);

}  // namespace cqms::storage

#endif  // CQMS_STORAGE_WAL_H_
