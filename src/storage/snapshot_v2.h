#ifndef CQMS_STORAGE_SNAPSHOT_V2_H_
#define CQMS_STORAGE_SNAPSHOT_V2_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "storage/env.h"
#include "storage/query_store.h"

namespace cqms::storage {

/// First bytes of a binary snapshot file; LoadSnapshot dispatches on
/// them (anything else falls back to the v1 text reader).
inline constexpr std::string_view kSnapshotV2Magic = "CQMSNAP2";

/// Writes the version-2 binary snapshot of `store` to `path`, atomically
/// (tmp file + rename). The format — magic + version, then
/// length-prefixed CRC32-framed sections — serializes everything the
/// store derived from the query text at append time: the referenced
/// slice of the global interner table, per-record similarity-signature
/// Symbol vectors and output-row hashes, MinHash sketch slots,
/// canonical/skeleton texts, fingerprints, syntactic components, runtime
/// stats, annotations, and the full ACL. LoadSnapshot can therefore
/// bulk-restore the store — indexes, scoring-column arenas, LSH buckets,
/// feature relations — from one sequential read, with zero re-parsing
/// and zero re-tokenization. See docs/persistence.md for the byte-level
/// spec.
///
/// Output summaries are still not persisted (same policy as v1): they
/// are refreshable profiler caches. Their *signature contribution* (the
/// output-row hashes similarity ranking reads) is persisted, so ranking
/// is byte-identical across a save/load pair.
///
/// `wal_sequence` stamps the highest WAL sequence number this snapshot
/// covers (a durability-metadata section); DurableStore uses it to make
/// snapshot + WAL-replay idempotent across a crash between snapshot
/// write and WAL truncation. Plain saves leave it 0.
Status SaveSnapshotV2(const QueryStore& store, const std::string& path,
                      uint64_t wal_sequence = 0, Env* env = nullptr);

/// Same format, encoded from a published read view instead of the live
/// store — a consistent mutation prefix, safe to run on any thread
/// concurrently with the writer (hold the view via
/// QueryStore::SharedView for the duration).
Status SaveSnapshotV2(const ReadViewState& view, const std::string& path,
                      uint64_t wal_sequence = 0, Env* env = nullptr);

/// The serialized v2 snapshot bytes without touching the filesystem —
/// SaveSnapshotV2 is EncodeSnapshotV2 + WriteFileAtomic. DurableStore
/// uses this directly so its checkpoint can sequence the writes itself
/// (it keeps the previous snapshot generation alive across the
/// publish; see docs/persistence.md). kInternal when a stored
/// signature references a symbol outside the interner table.
Status EncodeSnapshotV2(const QueryStore& store, uint64_t wal_sequence,
                        std::string* out);

/// View-backed encode (see the SaveSnapshotV2 overload).
Status EncodeSnapshotV2(const ReadViewState& view, uint64_t wal_sequence,
                        std::string* out);

/// Structural validation without mutating any store: magic, version,
/// section framing and every section CRC. kCorruption on any mismatch.
/// This is how DurableStore::Open decides whether to fall back to the
/// previous snapshot generation — cheap (one sequential read, no
/// decode) and it catches exactly the faults retention protects
/// against (torn writes, bit rot).
Status VerifySnapshotV2(const std::string& path, Env* env = nullptr);

/// Loads a v2 snapshot into an empty store. Symbols are remapped through
/// the process-global interner (bulk re-intern of the stored table
/// slice): in a fresh process the mapping is the identity and the stored
/// MinHash sketches are adopted verbatim; in a process whose interner
/// already diverged, signature vectors are remapped and sketches
/// recomputed from them — still without touching the tokenizer or the
/// SQL parser. Corruption (bad magic, section CRC mismatch, truncation,
/// malformed payload) is rejected with kCorruption; a load that fails
/// mid-restore leaves the store partially populated, so callers must
/// discard it (the v1 loader has the same contract). `wal_sequence`
/// (optional) receives the stored durability stamp (0 when absent).
Status LoadSnapshotV2(QueryStore* store, const std::string& path,
                      uint64_t* wal_sequence = nullptr, Env* env = nullptr);

/// Same decode from in-memory bytes — the replication follower bootstraps
/// from a snapshot image streamed off the primary without staging it on
/// disk. `label` names the source in error messages.
Status LoadSnapshotV2FromString(QueryStore* store, std::string_view data,
                                const std::string& label,
                                uint64_t* wal_sequence = nullptr);

}  // namespace cqms::storage

#endif  // CQMS_STORAGE_SNAPSHOT_V2_H_
