#ifndef CQMS_STORAGE_QUERY_RECORD_H_
#define CQMS_STORAGE_QUERY_RECORD_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/interner.h"
#include "db/value.h"
#include "sql/ast.h"
#include "sql/components.h"
#include "storage/minhash.h"

namespace cqms::storage {

/// Identifier of a logged query within a QueryStore.
using QueryId = int64_t;

/// Identifier of a query session (assigned by the miner's sessionizer).
using SessionId = int64_t;

constexpr QueryId kInvalidQueryId = -1;
constexpr SessionId kInvalidSessionId = -1;

/// Runtime features captured by the Query Profiler (§4.1: "result
/// cardinality, execution time, and the query execution plan are already
/// incorporated in existing query profilers").
struct RuntimeStats {
  Micros execution_micros = 0;
  uint64_t result_rows = 0;
  uint64_t rows_scanned = 0;
  bool succeeded = true;
  std::string error;  ///< Status string for failed queries.
  /// Execution plan text captured from the engine (one operator per
  /// line: scans with pushed-down filters, join strategy, aggregation...).
  std::string plan;
};

/// Stored summary of a query's output — the paper's semantic query
/// feature ("the system also captures the query result", §4.1). The
/// profiler sizes the sample adaptively: long-running queries may store
/// their entire (small) output; fast huge outputs store little.
struct OutputSummary {
  uint64_t total_rows = 0;
  std::vector<std::string> column_names;
  std::vector<db::Row> sample_rows;
  bool complete = false;   ///< sample_rows is the entire output.
  size_t budget_rows = 0;  ///< The budget the policy granted.
};

/// Precomputed, interned similarity features of one record. Every string
/// set the similarity measures compare (tables, predicate skeletons,
/// qualified attributes, projections, text tokens) is interned through
/// the GlobalInterner() once at build/append time and stored as a sorted,
/// deduplicated Symbol vector; output sample rows are stored as sorted
/// 64-bit row hashes. Pairwise similarity then reduces to linear merges
/// over these vectors — zero allocations and zero string compares per
/// comparison. Invariant: each vector is sorted ascending with no
/// duplicates, so set cardinalities (and hence Jaccard scores) match the
/// string-set reference path exactly.
struct SimilaritySignature {
  std::vector<Symbol> tables;
  std::vector<Symbol> predicate_skeletons;
  std::vector<Symbol> attributes;   ///< Interned "rel.attr" strings.
  std::vector<Symbol> projections;
  std::vector<Symbol> text_tokens;  ///< ExtractWords() of the raw text.
  std::vector<uint64_t> output_rows;  ///< Fnv1a64 of printed sample rows.
  /// True when the output was computed and is known empty (total_rows == 0
  /// with named columns) — the one case where two sample-less summaries
  /// still compare as identical.
  bool output_empty_computed = false;
  bool valid = false;  ///< Set once the signature has been computed.
  /// True for probe records whose unseen strings got hash-derived ids
  /// instead of growing the global interner (see SignatureMode). Such a
  /// signature is fine to compare against interned ones but must not be
  /// stored: QueryStore::Append recomputes it in interned mode.
  bool transient = false;
};

/// A user note attached to a whole query or a fragment of it (§2.1).
struct Annotation {
  std::string author;
  Micros timestamp = 0;
  std::string text;
  /// Optional: the query fragment this annotation refers to (verbatim
  /// substring, e.g. one predicate). Empty = whole query.
  std::string fragment;
};

/// Maintenance flags (bitmask). §4.4: the CQMS flags queries invalidated
/// by schema changes, repairs them when possible, or marks them obsolete.
enum QueryFlags : uint32_t {
  kFlagNone = 0,
  kFlagSchemaBroken = 1u << 0,  ///< No longer binds against the catalog.
  kFlagRepaired = 1u << 1,      ///< Auto-repaired after schema change.
  kFlagObsolete = 1u << 2,      ///< Administratively retired.
  kFlagStatsStale = 1u << 3,    ///< Runtime stats predate data drift.
  kFlagDeleted = 1u << 4,       ///< Tombstoned by its owner or an admin.
};

/// One logged query with all profiled features. Copyable (the parse tree
/// is shared, immutable after profiling); the copy operations are
/// user-provided only to read `ast` atomically — see the member.
struct QueryRecord {
  QueryRecord() = default;
  /// Member-wise except `ast`, which is read through the shared_ptr
  /// atomic-access free functions: the copy-on-write clone in
  /// QueryStore::GetMutable copies a record that concurrent readers of
  /// a published view may be lazily materializing through Ast() at the
  /// same moment. Keep the member list in sync with the fields below.
  QueryRecord(const QueryRecord& other);
  QueryRecord& operator=(const QueryRecord& other);
  QueryRecord(QueryRecord&&) = default;
  QueryRecord& operator=(QueryRecord&&) = default;

  QueryId id = kInvalidQueryId;
  std::string text;              ///< Raw text as submitted.
  std::string canonical_text;    ///< See sql::CanonicalText.
  std::string skeleton;          ///< Canonical text with constants stripped.
  uint64_t fingerprint = 0;
  uint64_t skeleton_fingerprint = 0;
  std::string user;
  Micros timestamp = 0;

  /// Parsed statement; null for queries that failed to parse — and for
  /// records restored from a binary snapshot, which persist every
  /// parse-derived feature but not the tree itself. Consumers that need
  /// the tree must go through Ast(), which materializes it on demand;
  /// use parse_failed() (not a null check here) to test parsability.
  /// Concurrency: Ast() is the only code that writes this member on a
  /// shared record (set-once, via the shared_ptr atomic free functions);
  /// builder/rewrite code assigns it plainly, but only on records no
  /// reader can hold yet (pre-append, or the writer's post-COW clone).
  mutable std::shared_ptr<const sql::SelectStatement> ast;
  /// True when `text` is known to parse even while `ast` is not
  /// materialized (binary-snapshot restore). Set by BuildRecordFromText
  /// and the snapshot loader.
  bool text_parses = false;
  /// Syntactic features (empty when the query does not parse).
  sql::QueryComponents components;

  RuntimeStats stats;
  OutputSummary summary;
  /// Interned similarity features; computed in BuildRecordFromText for
  /// probe records and (re)finalized by QueryStore::Append once the
  /// profiler has attached the output summary.
  SimilaritySignature signature;
  /// MinHash sketch over the signature's Symbol vectors, computed
  /// alongside it (ComputeSimilaritySignature). Feeds the store's
  /// LshIndex and the clustering pair pruning; stays untouched by
  /// output-summary updates (output rows are not sketch elements).
  MinHashSketch sketch;
  std::vector<Annotation> annotations;

  SessionId session_id = kInvalidSessionId;
  uint32_t flags = kFlagNone;

  /// Quality score in [0,1] maintained by Query Maintenance (§4.4).
  double quality = 0.5;

  bool HasFlag(QueryFlags f) const { return (flags & f) != 0; }
  /// text_parses is tested first so that when it is true — the only
  /// state in which a concurrent Ast() call may be writing `ast` —
  /// the short-circuit never reads the pointer (race-free without
  /// paying for an atomic load on this hot predicate).
  bool parse_failed() const { return !text_parses && ast == nullptr; }

  /// The parse tree, re-parsing `text` on first use for records restored
  /// from a binary snapshot. Null for parse failures — callers must
  /// null-check even after a parse_failed() test, since a corrupt
  /// snapshot could carry a parsed bit with unparsable text.
  /// Thread-safe on shared (published-view) records: the lazy
  /// materialization is a set-once compare-and-swap, so concurrent
  /// callers agree on one tree and the returned pointer stays valid for
  /// the record's lifetime.
  const sql::SelectStatement* Ast() const;
};

}  // namespace cqms::storage

#endif  // CQMS_STORAGE_QUERY_RECORD_H_
