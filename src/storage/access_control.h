#ifndef CQMS_STORAGE_ACCESS_CONTROL_H_
#define CQMS_STORAGE_ACCESS_CONTROL_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/query_record.h"
#include "storage/store_listener.h"

namespace cqms::storage {

/// Who may see a logged query (§2.4 User Administrative Interaction:
/// "define access control rules on their queries, e.g. sharing them only
/// with members of the same research group").
enum class Visibility {
  kPrivate,  ///< Owner only.
  kGroup,    ///< Owner plus users sharing at least one group. Default.
  kPublic,   ///< Everyone.
};

/// Users, groups and per-query visibility rules. Every read path of the
/// CQMS (search, browse, recommendations, mining inputs) filters through
/// `CanSee` so knowledge transfer respects collaboration boundaries.
class AccessControl {
 public:
  AccessControl() = default;

  /// Copying carries the rules (memberships, visibility, epoch) but
  /// never the listeners: a copy is a frozen snapshot — a published
  /// read view's ACL — not a second mutation source, so observers of
  /// the live ACL must not receive (or dangle from) its copies.
  AccessControl(const AccessControl& other)
      : memberships_(other.memberships_),
        visibility_(other.visibility_),
        epoch_(other.epoch_) {}
  AccessControl& operator=(const AccessControl& other) {
    if (this != &other) {
      memberships_ = other.memberships_;
      visibility_ = other.visibility_;
      epoch_ = other.epoch_;
    }
    return *this;
  }

  /// Registers `user` as a member of `groups` (creates groups on demand;
  /// repeated calls merge memberships).
  void AddUser(const std::string& user, const std::vector<std::string>& groups);

  /// True when the user has been registered.
  bool HasUser(const std::string& user) const { return memberships_.count(user) > 0; }

  /// Groups of `user` (empty set for unknown users).
  const std::set<std::string>& GroupsOf(const std::string& user) const;

  bool ShareGroup(const std::string& a, const std::string& b) const;

  /// Sets the visibility of one query. Only the owner may change it;
  /// `requester` must equal `owner`.
  Status SetVisibility(QueryId id, const std::string& owner,
                       const std::string& requester, Visibility visibility);

  Visibility GetVisibility(QueryId id) const;

  /// Core check: may `viewer` see a query owned by `owner` with the
  /// visibility registered for `id`? Owners always see their own queries.
  bool CanSee(const std::string& viewer, const std::string& owner, QueryId id) const;

  /// All registered users with their group memberships (for persistence
  /// and administrative listing).
  const std::map<std::string, std::set<std::string>>& memberships() const {
    return memberships_;
  }

  /// Monotonic counter bumped by every mutation that can change a
  /// CanSee outcome (group membership merges, per-query visibility
  /// changes). Long-lived VisibilityCaches compare it against the value
  /// they snapshotted and drop their memoized decisions on mismatch, so
  /// caching never outlives an ACL change.
  uint64_t epoch() const { return epoch_; }

  /// Registers / detaches a mutation observer. Managed by
  /// QueryStore::AddListener/RemoveListener so one call covers store
  /// and ACL; double registration is a no-op.
  void AddListener(StoreListener* listener);
  void RemoveListener(StoreListener* listener);

 private:
  std::map<std::string, std::set<std::string>> memberships_;
  std::map<QueryId, Visibility> visibility_;
  uint64_t epoch_ = 0;
  std::vector<StoreListener*> listeners_;
  std::set<std::string> empty_;
};

}  // namespace cqms::storage

#endif  // CQMS_STORAGE_ACCESS_CONTROL_H_
