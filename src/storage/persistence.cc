#include "storage/persistence.h"

#include <cctype>
#include <cstdio>
#include <memory>
#include <sstream>

#include "common/string_util.h"
#include "storage/record_builder.h"
#include "storage/snapshot_v2.h"

namespace cqms::storage {

namespace {

/// Percent-escapes whitespace, '%' and non-printables so every field fits
/// on one space-separated line. The empty field is marked by a lone "%",
/// which no escaped content can produce (a literal '%' always escapes to
/// "%25"), so every field — including a single NUL byte, which escapes
/// to "%00" — round-trips unambiguously. This marker change is what
/// bumps the text header to "CQMS-SNAPSHOT 1.1": version-1 files used
/// "%00" as the empty marker, and the reader keys its decoding on the
/// header so legacy files keep reading correctly.
std::string Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    if (c == '%' || c <= ' ' || c >= 127) {
      char buf[4];
      std::snprintf(buf, sizeof(buf), "%%%02X", c);
      out += buf;
    } else {
      out.push_back(static_cast<char>(c));
    }
  }
  if (out.empty()) out = "%";  // empty-field marker
  return out;
}

int HexValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  return -1;
}

/// Inverse of Escape. A truncated trailing escape ("...%4") or a
/// non-hex escape body is corruption, not content: returns false rather
/// than passing the '%' through silently. `legacy_empty_marker` selects
/// the version-1 decoding, where a whole-field "%00" meant empty (that
/// version could not represent a single-NUL field at all — the
/// ambiguity 1.1 fixes).
bool Unescape(const std::string& s, std::string* out,
              bool legacy_empty_marker) {
  out->clear();
  if (s == "%") return true;
  if (legacy_empty_marker && s == "%00") return true;
  out->reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '%') {
      out->push_back(s[i]);
      continue;
    }
    if (i + 2 >= s.size()) return false;  // truncated escape
    int hi = HexValue(s[i + 1]);
    int lo = HexValue(s[i + 2]);
    if (hi < 0 || lo < 0) return false;  // malformed escape body
    out->push_back(static_cast<char>(hi * 16 + lo));
    i += 2;
  }
  return true;
}

/// Stream-extracts one escaped field and decodes it; false on stream
/// exhaustion or malformed escaping.
bool ReadField(std::istream& in, std::string* out, bool legacy_empty_marker) {
  std::string enc;
  if (!(in >> enc)) return false;
  return Unescape(enc, out, legacy_empty_marker);
}

Status LoadSnapshotV1(QueryStore* store, std::istream& in,
                      const std::string& path, bool legacy_empty_marker) {
  auto read_field = [&](std::istream& stream, std::string* out) {
    return ReadField(stream, out, legacy_empty_marker);
  };
  std::string line;
  QueryId current = kInvalidQueryId;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    if (tag == "U") {
      std::string user;
      if (!read_field(ls, &user)) {
        return Status::IoError("corrupt U line in " + path);
      }
      std::vector<std::string> groups;
      std::string g;
      std::string g_enc;
      while (ls >> g_enc) {
        if (!Unescape(g_enc, &g, legacy_empty_marker)) {
          return Status::IoError("corrupt U line in " + path);
        }
        groups.push_back(g);
      }
      store->acl().AddUser(user, groups);
    } else if (tag == "Q") {
      QueryId id;
      Micros ts;
      SessionId session;
      uint32_t flags;
      double quality;
      std::string user, text;
      ls >> id >> ts >> session >> flags >> quality;
      if (!ls || !read_field(ls, &user) || !read_field(ls, &text)) {
        return Status::IoError("corrupt Q line in " + path);
      }
      QueryRecord record = BuildRecordFromText(text, user, ts);
      record.session_id = session;
      record.flags = flags;
      record.quality = quality;
      current = store->Append(std::move(record));
      if (current != id) {
        return Status::IoError("non-contiguous query ids in snapshot: " + path);
      }
    } else if (tag == "S") {
      if (current == kInvalidQueryId) return Status::IoError("S before Q");
      QueryRecord* r = store->GetMutable(current);
      int succeeded;
      ls >> r->stats.execution_micros >> r->stats.result_rows >>
          r->stats.rows_scanned >> succeeded;
      if (!ls || !read_field(ls, &r->stats.error)) {
        return Status::IoError("corrupt S line in " + path);
      }
      r->stats.succeeded = succeeded != 0;
    } else if (tag == "P") {
      if (current == kInvalidQueryId) return Status::IoError("P before Q");
      if (!read_field(ls, &store->GetMutable(current)->stats.plan)) {
        return Status::IoError("corrupt P line in " + path);
      }
    } else if (tag == "A") {
      if (current == kInvalidQueryId) return Status::IoError("A before Q");
      Annotation a;
      ls >> a.timestamp;
      if (!ls || !read_field(ls, &a.author) || !read_field(ls, &a.fragment) ||
          !read_field(ls, &a.text)) {
        return Status::IoError("corrupt A line in " + path);
      }
      CQMS_RETURN_IF_ERROR(store->Annotate(current, std::move(a)));
    } else if (tag == "V") {
      if (current == kInvalidQueryId) return Status::IoError("V before Q");
      int vis;
      ls >> vis;
      if (!ls) return Status::IoError("corrupt V line in " + path);
      const QueryRecord* r = store->Get(current);
      CQMS_RETURN_IF_ERROR(store->acl().SetVisibility(
          current, r->user, r->user, static_cast<Visibility>(vis)));
    } else {
      return Status::IoError("unknown snapshot tag '" + tag + "' in " + path);
    }
  }
  return Status::Ok();
}

}  // namespace

Status WriteFileAtomic(const std::string& path, std::string_view contents,
                       Env* env) {
  if (env == nullptr) env = Env::Default();
  const std::string tmp = path + ".tmp";
  std::unique_ptr<WritableFile> out;
  CQMS_RETURN_IF_ERROR(env->NewWritableFile(tmp, Env::WriteMode::kTruncate,
                                            &out));
  Status s = out->Append(contents);
  if (s.ok()) s = out->Flush();
  // The bytes must be on stable storage *before* the rename publishes
  // them: DurableStore rotates the WAL right after a snapshot save,
  // so a power cut with the snapshot still in the page cache would
  // otherwise lose every mutation since the previous checkpoint.
  if (s.ok()) s = out->Sync();
  Status close_status = out->Close();
  if (s.ok()) s = close_status;
  if (!s.ok()) {
    (void)env->RemoveFile(tmp);
    return s;
  }
  s = env->RenameFile(tmp, path);
  if (!s.ok()) {
    (void)env->RemoveFile(tmp);
    return s;
  }
  // Persist the rename itself (the directory entry). A failure here
  // means the publish may not survive power loss — report it.
  return env->SyncDir(DirnameOf(path));
}

Status ReadFileToString(const std::string& path, std::string* out,
                        Env* env) {
  if (env == nullptr) env = Env::Default();
  std::unique_ptr<RandomAccessFile> in;
  CQMS_RETURN_IF_ERROR(env->NewRandomAccessFile(path, &in));
  uint64_t size = 0;
  CQMS_RETURN_IF_ERROR(in->Size(&size));
  CQMS_RETURN_IF_ERROR(in->Read(0, static_cast<size_t>(size), out));
  if (out->size() != size) return Status::IoError("read failed: " + path);
  return Status::Ok();
}

Status SaveSnapshot(const QueryStore& store, const std::string& path,
                    Env* env) {
  std::ostringstream out;
  out << "CQMS-SNAPSHOT 1.1\n";
  for (const auto& [user, groups] : store.acl().memberships()) {
    out << "U " << Escape(user);
    for (const std::string& g : groups) out << " " << Escape(g);
    out << "\n";
  }
  for (const QueryRecord& r : store.records()) {
    out << "Q " << r.id << " " << r.timestamp << " " << r.session_id << " "
        << r.flags << " " << r.quality << " " << Escape(r.user) << " "
        << Escape(r.text) << "\n";
    out << "S " << r.stats.execution_micros << " " << r.stats.result_rows << " "
        << r.stats.rows_scanned << " " << (r.stats.succeeded ? 1 : 0) << " "
        << Escape(r.stats.error) << "\n";
    if (!r.stats.plan.empty()) out << "P " << Escape(r.stats.plan) << "\n";
    for (const Annotation& a : r.annotations) {
      out << "A " << a.timestamp << " " << Escape(a.author) << " "
          << Escape(a.fragment) << " " << Escape(a.text) << "\n";
    }
    out << "V " << static_cast<int>(store.acl().GetVisibility(r.id)) << "\n";
  }
  return WriteFileAtomic(path, out.str(), env);
}

Status LoadSnapshot(QueryStore* store, const std::string& path,
                    uint64_t* wal_sequence, Env* env) {
  if (env == nullptr) env = Env::Default();
  if (wal_sequence != nullptr) *wal_sequence = 0;
  if (store->size() != 0) {
    return Status::InvalidArgument("LoadSnapshot requires an empty store");
  }

  // Dispatch on the header: binary v2 magic, else the v1 text format.
  {
    std::unique_ptr<RandomAccessFile> probe;
    CQMS_RETURN_IF_ERROR(env->NewRandomAccessFile(path, &probe));
    std::string magic;
    CQMS_RETURN_IF_ERROR(probe->Read(0, kSnapshotV2Magic.size(), &magic));
    if (magic == kSnapshotV2Magic) {
      return LoadSnapshotV2(store, path, wal_sequence, env);
    }
  }

  std::string file;
  CQMS_RETURN_IF_ERROR(ReadFileToString(path, &file, env));
  std::istringstream in(file);
  std::string line;
  if (!std::getline(in, line) || line.rfind("CQMS-SNAPSHOT", 0) != 0) {
    // Neither the v2 magic nor the v1 text header: the bytes fail
    // validation, which routes DurableStore::Open to its fallback.
    return Status::Corruption("not a CQMS snapshot: " + path);
  }
  // Version "1" files used "%00" as the empty-field marker; "1.1" moved
  // it to a lone "%" so single-NUL fields round-trip.
  std::istringstream header(line);
  std::string word, version;
  header >> word >> version;
  return LoadSnapshotV1(store, in, path,
                        /*legacy_empty_marker=*/version == "1");
}

}  // namespace cqms::storage
