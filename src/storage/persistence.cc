#include "storage/persistence.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/string_util.h"
#include "storage/record_builder.h"

namespace cqms::storage {

namespace {

/// Percent-escapes whitespace, '%' and non-printables so every field fits
/// on one space-separated line.
std::string Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    if (c == '%' || c <= ' ' || c >= 127) {
      char buf[4];
      std::snprintf(buf, sizeof(buf), "%%%02X", c);
      out += buf;
    } else {
      out.push_back(static_cast<char>(c));
    }
  }
  if (out.empty()) out = "%00";  // empty-field marker
  return out;
}

std::string Unescape(const std::string& s) {
  if (s == "%00") return "";
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '%' && i + 2 < s.size()) {
      int hi = std::isdigit(static_cast<unsigned char>(s[i + 1]))
                   ? s[i + 1] - '0'
                   : std::toupper(static_cast<unsigned char>(s[i + 1])) - 'A' + 10;
      int lo = std::isdigit(static_cast<unsigned char>(s[i + 2]))
                   ? s[i + 2] - '0'
                   : std::toupper(static_cast<unsigned char>(s[i + 2])) - 'A' + 10;
      out.push_back(static_cast<char>(hi * 16 + lo));
      i += 2;
    } else {
      out.push_back(s[i]);
    }
  }
  return out;
}

}  // namespace

Status SaveSnapshot(const QueryStore& store, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  out << "CQMS-SNAPSHOT 1\n";
  for (const auto& [user, groups] : store.acl().memberships()) {
    out << "U " << Escape(user);
    for (const std::string& g : groups) out << " " << Escape(g);
    out << "\n";
  }
  for (const QueryRecord& r : store.records()) {
    out << "Q " << r.id << " " << r.timestamp << " " << r.session_id << " "
        << r.flags << " " << r.quality << " " << Escape(r.user) << " "
        << Escape(r.text) << "\n";
    out << "S " << r.stats.execution_micros << " " << r.stats.result_rows << " "
        << r.stats.rows_scanned << " " << (r.stats.succeeded ? 1 : 0) << " "
        << Escape(r.stats.error) << "\n";
    if (!r.stats.plan.empty()) out << "P " << Escape(r.stats.plan) << "\n";
    for (const Annotation& a : r.annotations) {
      out << "A " << a.timestamp << " " << Escape(a.author) << " "
          << Escape(a.fragment) << " " << Escape(a.text) << "\n";
    }
    out << "V " << static_cast<int>(store.acl().GetVisibility(r.id)) << "\n";
  }
  return out.good() ? Status::Ok() : Status::IoError("write failed: " + path);
}

Status LoadSnapshot(QueryStore* store, const std::string& path) {
  if (store->size() != 0) {
    return Status::InvalidArgument("LoadSnapshot requires an empty store");
  }
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  std::string line;
  if (!std::getline(in, line) || line.rfind("CQMS-SNAPSHOT", 0) != 0) {
    return Status::IoError("not a CQMS snapshot: " + path);
  }

  QueryId current = kInvalidQueryId;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    if (tag == "U") {
      std::string user_enc;
      ls >> user_enc;
      if (!ls) return Status::IoError("corrupt U line in " + path);
      std::vector<std::string> groups;
      std::string g;
      while (ls >> g) groups.push_back(Unescape(g));
      store->acl().AddUser(Unescape(user_enc), groups);
    } else if (tag == "Q") {
      QueryId id;
      Micros ts;
      SessionId session;
      uint32_t flags;
      double quality;
      std::string user_enc, text_enc;
      ls >> id >> ts >> session >> flags >> quality >> user_enc >> text_enc;
      if (!ls) return Status::IoError("corrupt Q line in " + path);
      QueryRecord record =
          BuildRecordFromText(Unescape(text_enc), Unescape(user_enc), ts);
      record.session_id = session;
      record.flags = flags;
      record.quality = quality;
      current = store->Append(std::move(record));
      if (current != id) {
        return Status::IoError("non-contiguous query ids in snapshot: " + path);
      }
    } else if (tag == "S") {
      if (current == kInvalidQueryId) return Status::IoError("S before Q");
      QueryRecord* r = store->GetMutable(current);
      int succeeded;
      std::string error_enc;
      ls >> r->stats.execution_micros >> r->stats.result_rows >>
          r->stats.rows_scanned >> succeeded >> error_enc;
      if (!ls) return Status::IoError("corrupt S line in " + path);
      r->stats.succeeded = succeeded != 0;
      r->stats.error = Unescape(error_enc);
    } else if (tag == "P") {
      if (current == kInvalidQueryId) return Status::IoError("P before Q");
      std::string plan_enc;
      ls >> plan_enc;
      if (!ls) return Status::IoError("corrupt P line in " + path);
      store->GetMutable(current)->stats.plan = Unescape(plan_enc);
    } else if (tag == "A") {
      if (current == kInvalidQueryId) return Status::IoError("A before Q");
      Annotation a;
      std::string author_enc, fragment_enc, text_enc;
      ls >> a.timestamp >> author_enc >> fragment_enc >> text_enc;
      if (!ls) return Status::IoError("corrupt A line in " + path);
      a.author = Unescape(author_enc);
      a.fragment = Unescape(fragment_enc);
      a.text = Unescape(text_enc);
      CQMS_RETURN_IF_ERROR(store->Annotate(current, std::move(a)));
    } else if (tag == "V") {
      if (current == kInvalidQueryId) return Status::IoError("V before Q");
      int vis;
      ls >> vis;
      if (!ls) return Status::IoError("corrupt V line in " + path);
      const QueryRecord* r = store->Get(current);
      CQMS_RETURN_IF_ERROR(store->acl().SetVisibility(
          current, r->user, r->user, static_cast<Visibility>(vis)));
    } else {
      return Status::IoError("unknown snapshot tag '" + tag + "' in " + path);
    }
  }
  return Status::Ok();
}

}  // namespace cqms::storage
