#ifndef CQMS_STORAGE_LSH_INDEX_H_
#define CQMS_STORAGE_LSH_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "storage/minhash.h"
#include "storage/query_record.h"

namespace cqms::storage {

/// Banding scheme of the LshIndex — the recall/cost knob. The sketch's
/// kSize slots are cut into `bands` groups of `rows` consecutive slots;
/// two records land in the same bucket of band i iff their sketches
/// agree on all `rows` slots of that band, so a pair with element-set
/// Jaccard J collides in at least one band with probability
///   1 - (1 - J^rows)^bands.
/// More bands / fewer rows shifts the s-curve left (higher recall, more
/// candidates); see docs/lsh_tuning.md for the measured tradeoff table.
/// The default 8x8 centers the s-curve at J ~= 0.77: exact and
/// near-exact duplicates (which dominate the top-k on query-log
/// workloads — sessions re-render the same template text) always
/// collide, while the long tail of mid-similarity template variants is
/// pruned. Recall-critical callers should widen to e.g. {16, 4}
/// (s-curve midpoint ~0.5) at ~3x the candidate volume.
struct LshParams {
  size_t bands = 8;
  size_t rows = 8;
};

/// Candidate-dedup scratch for LshIndex::Candidates: an epoch-stamped
/// id table (seen[id] == epoch marks ids already emitted by the current
/// probe) that avoids zeroing or allocating an O(log size) bitmap per
/// call. The scratch used to live as `mutable` state inside the index,
/// which made the `const` Candidates call write shared memory — a data
/// race the moment two readers probe the same (or a published-view copy
/// of the) index. It is now owned by the prober: pass one explicitly to
/// reuse it across calls, or pass nullptr to use a per-thread scratch
/// (each thread keeps one, shared safely across every index it probes —
/// the epoch stamping makes stale entries from other indexes inert).
class LshProbeScratch {
 public:
  LshProbeScratch() = default;

 private:
  friend class LshIndex;
  std::vector<uint64_t> seen_epoch_;
  uint64_t epoch_ = 0;
};

/// Locality-sensitive index over MinHash sketches: per band, a hash map
/// from the band's slot values to the sorted posting list of query ids
/// whose sketch matches them. Maintained incrementally by
/// QueryStore::Append / RewriteQueryText with the same stale-entry purge
/// discipline as the table/attribute/keyword indexes: a record is never
/// findable under a sketch it no longer has.
///
/// Empty sketches (records with zero sketch elements) are not indexed —
/// they carry no locality signal and would collide with every other
/// empty record.
///
/// Thread model: all const methods (Candidates included) are safe to
/// call from any number of concurrent readers — the index holds no
/// mutable scratch. Insert/Remove are writer-side only.
class LshIndex {
 public:
  explicit LshIndex(LshParams params = {});

  /// Pre-sizes every band's bucket map for about `records` indexed
  /// sketches (bulk snapshot restore).
  void Reserve(size_t records);

  /// Adds `id` under every band bucket of `sketch`. No-op for invalid
  /// or empty sketches.
  void Insert(QueryId id, const MinHashSketch& sketch);

  /// Removes `id` from every band bucket of `sketch` (which must be the
  /// sketch it was inserted under). Empties are pruned so rewritten
  /// records leave no tombstone buckets behind.
  void Remove(QueryId id, const MinHashSketch& sketch);

  /// Sorted, deduplicated ids sharing at least one band bucket with
  /// `sketch`. `probe_bands` limits the lookup to the first N bands
  /// (0 = all) — fewer bands is faster but lowers recall. `scratch` is
  /// the caller's dedup table; nullptr uses this thread's scratch.
  std::vector<QueryId> Candidates(const MinHashSketch& sketch,
                                  size_t probe_bands = 0,
                                  LshProbeScratch* scratch = nullptr) const;

  size_t bands() const { return params_.bands; }
  size_t rows() const { return params_.rows; }

  /// Total postings across all buckets. An indexed record contributes
  /// exactly bands() postings, so this equals bands() * indexed-record
  /// count whenever the index is consistent — the lifecycle tests
  /// assert on it.
  size_t entry_count() const;

  /// True when `id` is present in the bucket of *every* band of
  /// `sketch` exactly once — i.e. the record is indexed under this
  /// sketch with no duplicates (test/debug helper).
  bool ContainsExactlyOnce(QueryId id, const MinHashSketch& sketch) const;

 private:
  uint64_t BandKey(const MinHashSketch& sketch, size_t band) const;

  LshParams params_;
  /// One bucket map per band.
  std::vector<std::unordered_map<uint64_t, std::vector<QueryId>>> buckets_;
  /// Exclusive upper bound on inserted ids, sizing the dedup scratch in
  /// Candidates.
  QueryId id_bound_ = 0;
};

}  // namespace cqms::storage

#endif  // CQMS_STORAGE_LSH_INDEX_H_
