#include "storage/durable_store.h"

#include <algorithm>
#include <fstream>

#include "common/binary_codec.h"
#include "storage/persistence.h"
#include "storage/snapshot_v2.h"

#ifdef __unix__
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>
#endif

namespace cqms::storage {

namespace {

bool FileExists(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  return f.good();
}

Status EnsureDirectory(const std::string& dir) {
#ifdef __unix__
  struct stat st;
  if (::stat(dir.c_str(), &st) == 0) {
    return S_ISDIR(st.st_mode)
               ? Status::Ok()
               : Status::IoError("not a directory: " + dir);
  }
  if (::mkdir(dir.c_str(), 0755) != 0) {
    return Status::IoError("cannot create directory: " + dir);
  }
  return Status::Ok();
#else
  (void)dir;
  return Status::Ok();
#endif
}

Status TruncateFile(const std::string& path, uint64_t size) {
#ifdef __unix__
  if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
    return Status::IoError("cannot truncate: " + path);
  }
  return Status::Ok();
#else
  // Portable fallback: rewrite the valid prefix.
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open: " + path);
  std::string data(size, '\0');
  in.read(data.data(), static_cast<std::streamsize>(size));
  if (in.gcount() != static_cast<std::streamsize>(size)) {
    return Status::IoError("cannot read valid prefix: " + path);
  }
  in.close();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(size));
  return out.good() ? Status::Ok()
                    : Status::IoError("cannot rewrite: " + path);
#endif
}

}  // namespace

DurableStore::DurableStore(QueryStore* store, std::string dir,
                           DurabilityOptions options)
    : store_(store),
      dir_(std::move(dir)),
      snapshot_path_(dir_ + "/snapshot.cqms"),
      wal_path_(dir_ + "/wal.log"),
      options_(options) {}

DurableStore::~DurableStore() {
  if (open_) store_->RemoveListener(this);
}

Status DurableStore::Open() {
  if (open_) return Status::Internal("DurableStore already open");
  // The epoch also guards the ACL: memberships or visibility registered
  // before the listener attaches would exist only in memory — logged
  // queries would be durable while the rules governing who may see
  // them silently evaporate at the next recovery.
  if (store_->size() != 0 || store_->acl().epoch() != 0) {
    return Status::InvalidArgument(
        "durable recovery requires a pristine store (no records, no ACL "
        "mutations)");
  }
  CQMS_RETURN_IF_ERROR(EnsureDirectory(dir_));
  uint64_t snapshot_sequence = 0;
  if (FileExists(snapshot_path_)) {
    CQMS_RETURN_IF_ERROR(
        LoadSnapshot(store_, snapshot_path_, &snapshot_sequence));
  }
  CQMS_RETURN_IF_ERROR(
      ReplayWal(wal_path_, store_, &replay_stats_, snapshot_sequence));
  replayed_records_ = replay_stats_.records_applied;
  last_sequence_ = std::max(snapshot_sequence, replay_stats_.max_sequence);
  if (replay_stats_.torn_bytes > 0) {
    // Drop the torn tail so future appends start on a frame boundary.
    CQMS_RETURN_IF_ERROR(TruncateFile(wal_path_, replay_stats_.bytes_valid));
  }
  CQMS_RETURN_IF_ERROR(wal_.Open(wal_path_, options_.fsync_each_record));
  store_->AddListener(this);
  open_ = true;
  return Status::Ok();
}

Status DurableStore::Checkpoint() {
  if (!open_) return Status::Internal("DurableStore not open");
  // Deliberately ignores any deferred WAL error: the snapshot is taken
  // from the in-memory store, which is ahead of a failing log, so a
  // successful checkpoint *repairs* durability rather than being
  // blocked by the failure.
  CQMS_RETURN_IF_ERROR(
      SaveSnapshotV2(*store_, snapshot_path_, last_sequence_));
  CQMS_RETURN_IF_ERROR(wal_.Reset());
  replayed_records_ = 0;
  deferred_error_ = Status::Ok();
  return Status::Ok();
}

Status DurableStore::MaybeCheckpoint(bool* checkpointed) {
  if (checkpointed != nullptr) *checkpointed = false;
  if (!open_) return Status::Internal("DurableStore not open");
  if (deferred_error_.ok() && wal_.bytes() < options_.checkpoint_wal_bytes &&
      wal_records() < options_.checkpoint_wal_records) {
    return Status::Ok();
  }
  Status s = Checkpoint();
  if (checkpointed != nullptr) *checkpointed = s.ok();
  return s;
}

void DurableStore::Log(std::string_view op_payload) {
  BinaryWriter frame;
  frame.PutVarint(++last_sequence_);
  frame.PutBytes(op_payload.data(), op_payload.size());
  Status s = wal_.Append(frame.data());
  if (!s.ok() && deferred_error_.ok()) deferred_error_ = s;
}

void DurableStore::OnAppend(const QueryRecord& record) {
  Log(wal::EncodeAppend(record));
}

void DurableStore::OnRewrite(QueryId id, const std::string& new_text) {
  Log(wal::EncodeRewrite(id, new_text, store_->Get(id)->signature));
}

void DurableStore::OnAnnotate(QueryId id, const Annotation& annotation) {
  Log(wal::EncodeAnnotate(id, annotation));
}

void DurableStore::OnFlagChange(QueryId id, QueryFlags flag, bool set) {
  Log(wal::EncodeFlagChange(id, flag, set));
}

void DurableStore::OnSetSession(QueryId id, SessionId session) {
  Log(wal::EncodeSetSession(id, session));
}

void DurableStore::OnSetQuality(QueryId id, double quality) {
  Log(wal::EncodeSetQuality(id, quality));
}

void DurableStore::OnDelete(QueryId id) { Log(wal::EncodeDelete(id)); }

void DurableStore::OnAclAddUser(const std::string& user,
                                const std::vector<std::string>& groups) {
  Log(wal::EncodeAddUser(user, groups));
}

void DurableStore::OnAclSetVisibility(QueryId id, Visibility visibility) {
  Log(wal::EncodeSetVisibility(id, visibility));
}

}  // namespace cqms::storage
