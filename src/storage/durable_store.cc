#include "storage/durable_store.h"

#include <algorithm>
#include <memory>

#include "common/binary_codec.h"
#include "common/clock.h"
#include "obs/metrics.h"
#include "storage/persistence.h"
#include "storage/snapshot_v2.h"

namespace cqms::storage {

namespace {

// Checkpoint / durability health series, resolved once per process.
struct DurableSeries {
  obs::Histogram* checkpoint_micros;
  obs::Counter* checkpoints;
  obs::Counter* checkpoint_failures;
  obs::Gauge* failure_streak;
  obs::Gauge* read_only;
  obs::Gauge* repl_backlog;
};

const DurableSeries& Series() {
  static const DurableSeries s = [] {
    auto& reg = obs::MetricsRegistry::Global();
    DurableSeries d;
    d.checkpoint_micros = reg.GetHistogram("cqms_checkpoint_micros");
    d.checkpoints = reg.GetCounter("cqms_checkpoints_total");
    d.checkpoint_failures = reg.GetCounter("cqms_checkpoint_failures_total");
    d.failure_streak = reg.GetGauge("cqms_checkpoint_failure_streak");
    d.read_only = reg.GetGauge("cqms_durable_read_only");
    d.repl_backlog = reg.GetGauge("cqms_repl_backlog_bytes");
    return d;
  }();
  return s;
}

/// Corruption of a snapshot generation is recoverable when the previous
/// one survives; everything else (including a plain missing file) has
/// its own handling.
bool IsCorruption(const Status& s) {
  return s.code() == StatusCode::kCorruption;
}

}  // namespace

DurableStore::DurableStore(QueryStore* store, std::string dir,
                           DurabilityOptions options)
    : store_(store),
      dir_(std::move(dir)),
      snapshot_path_(dir_ + "/snapshot.cqms"),
      wal_path_(dir_ + "/wal.log"),
      prev_snapshot_path_(dir_ + "/snapshot.cqms.1"),
      prev_wal_path_(dir_ + "/wal.log.1"),
      options_(options),
      env_(options.env != nullptr ? options.env : Env::Default()) {}

DurableStore::~DurableStore() {
  if (open_) store_->RemoveListener(this);
}

void DurableStore::SweepStaleTmpFiles() {
  // A crash between a tmp write and its rename strands `*.tmp` files;
  // they are never read, only republished, so removal is always safe.
  // Best effort: a failure to sweep must not block recovery.
  std::vector<std::string> names;
  if (!env_->ListDir(dir_, &names).ok()) return;
  for (const std::string& name : names) {
    if (name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0) {
      (void)env_->RemoveFile(dir_ + "/" + name);
    }
  }
}

Status DurableStore::Open() {
  if (open_) return Status::Internal("DurableStore already open");
  // The epoch also guards the ACL: memberships or visibility registered
  // before the listener attaches would exist only in memory — logged
  // queries would be durable while the rules governing who may see
  // them silently evaporate at the next recovery.
  if (store_->size() != 0 || store_->acl().epoch() != 0) {
    return Status::InvalidArgument(
        "durable recovery requires a pristine store (no records, no ACL "
        "mutations)");
  }
  CQMS_RETURN_IF_ERROR(env_->CreateDirIfMissing(dir_));
  SweepStaleTmpFiles();

  // Pick the snapshot generation to restore from. The newest one is
  // CRC-verified first (v2 only — a v1 text snapshot predates both the
  // framing and the retention scheme) so a torn or bit-rotted file
  // routes to the previous generation instead of failing the load.
  recovered_from_fallback_ = false;
  uint64_t snapshot_sequence = 0;
  const bool primary_exists = env_->FileExists(snapshot_path_);
  const bool prev_exists = env_->FileExists(prev_snapshot_path_);
  bool use_fallback = false;
  if (primary_exists) {
    Status verify = VerifySnapshotV2(snapshot_path_, env_);
    if (IsCorruption(verify)) {
      // "bad magic" also covers legacy v1 text snapshots, which have
      // no CRC framing to verify — those go straight to LoadSnapshot.
      // Anything else (broken v2 image, or garbage that is neither
      // format — e.g. bit rot inside the magic itself) routes to the
      // previous generation when one exists.
      std::string head;
      std::unique_ptr<RandomAccessFile> probe;
      Status ps = env_->NewRandomAccessFile(snapshot_path_, &probe);
      if (ps.ok()) ps = probe->Read(0, kSnapshotV2Magic.size(), &head);
      const bool is_v1_text = ps.ok() && head == "CQMS-SNA";
      if (!is_v1_text) {
        if (prev_exists) {
          use_fallback = true;
        } else {
          return verify;  // corrupt and nothing to fall back to
        }
      }
    }
  } else if (prev_exists) {
    // A crash between the checkpoint's two renames leaves no primary
    // but a good previous generation plus a complete WAL.
    use_fallback = true;
  }

  if (use_fallback) {
    Status s = LoadSnapshot(store_, prev_snapshot_path_, &snapshot_sequence,
                            env_);
    if (!s.ok()) {
      return Status(s.code(), "both snapshot generations unusable: " +
                                  s.message());
    }
    recovered_from_fallback_ = true;
  } else if (primary_exists) {
    CQMS_RETURN_IF_ERROR(
        LoadSnapshot(store_, snapshot_path_, &snapshot_sequence, env_));
  }

  // Replay the retired logs first (oldest generation first), then the
  // active one. With a healthy primary snapshot every retired frame is
  // covered by its stamp and skipped; after a fallback (or a crash
  // mid-rotation) the newest retired log carries the mutations between
  // the two generations. Sequence stamps are monotonic across
  // checkpoints, so replaying everything is idempotent either way.
  // Retention (see RetireActiveWal) may have kept several generations
  // for follower catch-up: `wal.log.1` is the newest; the contiguous
  // run upward from it is the retained set.
  std::vector<std::string> retired_paths;  // index k <-> wal.log.(k+1)
  for (uint32_t i = 1;; ++i) {
    std::string path = RetiredWalPath(i);
    if (!env_->FileExists(path)) break;
    retired_paths.push_back(std::move(path));
  }
  retired_segments_.assign(retired_paths.size(), WalSegmentInfo{});
  uint64_t min_sequence = snapshot_sequence;
  replayed_records_ = 0;
  for (size_t k = retired_paths.size(); k-- > 0;) {  // oldest first
    WalReplayStats seg_stats;
    CQMS_RETURN_IF_ERROR(ReplayWal(retired_paths[k], store_, &seg_stats,
                                   min_sequence, env_));
    WalSegmentInfo& info = retired_segments_[k];
    info.path = retired_paths[k];
    if (seg_stats.max_sequence > 0) {
      info.min_sequence = seg_stats.min_sequence;
      info.max_sequence = seg_stats.max_sequence;
    } else {
      // Empty generation (a checkpoint with no mutations since the
      // last): describe it as the empty range after its predecessor.
      info.min_sequence = min_sequence + 1;
      info.max_sequence = min_sequence;
    }
    (void)env_->GetFileSize(info.path, &info.bytes);
    min_sequence = std::max(min_sequence, seg_stats.max_sequence);
    replayed_records_ += seg_stats.records_applied;
  }
  CQMS_RETURN_IF_ERROR(
      ReplayWal(wal_path_, store_, &replay_stats_, min_sequence, env_));
  replayed_records_ += replay_stats_.records_applied;
  last_sequence_ = std::max(min_sequence, replay_stats_.max_sequence);
  active_base_sequence_ = replay_stats_.min_sequence > 0
                              ? replay_stats_.min_sequence - 1
                              : last_sequence_;
  UpdateBacklogGauge();
  if (replay_stats_.torn_bytes > 0) {
    // Drop the torn tail so future appends start on a frame boundary.
    CQMS_RETURN_IF_ERROR(
        env_->TruncateFile(wal_path_, replay_stats_.bytes_valid));
  }
  CQMS_RETURN_IF_ERROR(
      wal_.Open(wal_path_, options_.fsync_each_record, env_));
  store_->AddListener(this);
  open_ = true;
  return Status::Ok();
}

Status DurableStore::PublishSnapshot(const std::string& encoded) {
  // tmp write + fsync, then the two renames, then one directory sync.
  // Every crash point leaves a recoverable pair: before the renames the
  // old primary + full WAL; between them the previous generation + both
  // WALs (Open's fallback path); after them the new primary.
  const std::string tmp = snapshot_path_ + ".tmp";
  std::unique_ptr<WritableFile> out;
  CQMS_RETURN_IF_ERROR(
      env_->NewWritableFile(tmp, Env::WriteMode::kTruncate, &out));
  Status s = out->Append(encoded);
  if (s.ok()) s = out->Flush();
  if (s.ok()) s = out->Sync();
  Status close_status = out->Close();
  if (s.ok()) s = close_status;
  if (!s.ok()) {
    (void)env_->RemoveFile(tmp);
    return s;
  }
  if (env_->FileExists(snapshot_path_)) {
    CQMS_RETURN_IF_ERROR(
        env_->RenameFile(snapshot_path_, prev_snapshot_path_));
  }
  CQMS_RETURN_IF_ERROR(env_->RenameFile(tmp, snapshot_path_));
  return env_->SyncDir(dir_);
}

Status DurableStore::Checkpoint() {
  WallTimer timer;
  Status s = CheckpointImpl();
  const DurableSeries& series = Series();
  if (s.ok()) {
    series.checkpoint_micros->Record(
        static_cast<uint64_t>(timer.ElapsedMicros()));
    series.checkpoints->Increment();
    series.read_only->Set(0);
  } else {
    series.checkpoint_failures->Increment();
  }
  return s;
}

Status DurableStore::CheckpointImpl() {
  if (!open_) return Status::Internal("DurableStore not open");
  // Deliberately ignores any deferred WAL error: the snapshot is taken
  // from the in-memory store, which is ahead of a failing log, so a
  // successful checkpoint *repairs* durability rather than being
  // blocked by the failure.
  std::string encoded;
  CQMS_RETURN_IF_ERROR(EncodeSnapshotV2(*store_, last_sequence_, &encoded));
  CQMS_RETURN_IF_ERROR(PublishSnapshot(encoded));
  CQMS_RETURN_IF_ERROR(RetireActiveWal());
  replayed_records_ = 0;
  deferred_error_ = Status::Ok();
  read_only_.store(false, std::memory_order_relaxed);
  return Status::Ok();
}

std::string DurableStore::RetiredWalPath(uint32_t index) const {
  return dir_ + "/wal.log." + std::to_string(index);
}

Status DurableStore::RetireActiveWal() {
  // Decide which existing retired generations a registered shipper
  // still needs: a segment is live while some follower's next frame
  // falls at or below its top. Without a hook — or with every follower
  // acked past everything — nothing is kept and the rotate below
  // replaces wal.log.1 exactly as before retention existed. The caps
  // bound a dead follower's hold on the primary's disk; a follower that
  // falls off the window re-bootstraps from a snapshot stream.
  const uint64_t min_required = shipping_hook_ != nullptr
                                    ? shipping_hook_->MinRequiredSequence()
                                    : UINT64_MAX;
  const uint64_t new_segment_bytes = wal_.bytes();
  size_t keep = 0;
  uint64_t kept_bytes = new_segment_bytes;
  while (keep < retired_segments_.size()) {
    const WalSegmentInfo& seg = retired_segments_[keep];
    if (seg.max_sequence < min_required) break;  // everyone acked past it
    // The just-rotated log always becomes wal.log.1, so the retained
    // count is keep + 1.
    if (keep + 2 > options_.repl_backlog_max_segments) break;
    if (kept_bytes + seg.bytes > options_.repl_backlog_max_bytes) break;
    kept_bytes += seg.bytes;
    ++keep;
  }
  for (size_t i = retired_segments_.size(); i-- > keep;) {
    (void)env_->RemoveFile(retired_segments_[i].path);
  }
  retired_segments_.resize(keep);
  // Shift survivors one index up, highest first so nothing is
  // clobbered. A retried checkpoint may find a source already shifted;
  // skip it (same tolerance as WalWriter::Rotate).
  for (size_t i = keep; i-- > 0;) {
    if (env_->FileExists(RetiredWalPath(static_cast<uint32_t>(i) + 1))) {
      CQMS_RETURN_IF_ERROR(
          env_->RenameFile(RetiredWalPath(static_cast<uint32_t>(i) + 1),
                           RetiredWalPath(static_cast<uint32_t>(i) + 2)));
    }
    retired_segments_[i].path = RetiredWalPath(static_cast<uint32_t>(i) + 2);
  }
  CQMS_RETURN_IF_ERROR(wal_.Rotate(prev_wal_path_));
  WalSegmentInfo info;
  info.path = prev_wal_path_;
  info.min_sequence = active_base_sequence_ + 1;
  info.max_sequence = last_sequence_;
  info.bytes = new_segment_bytes;
  retired_segments_.insert(retired_segments_.begin(), std::move(info));
  active_base_sequence_ = last_sequence_;
  UpdateBacklogGauge();
  return Status::Ok();
}

void DurableStore::UpdateBacklogGauge() {
  backlog_bytes_ = 0;
  for (const WalSegmentInfo& seg : retired_segments_) {
    backlog_bytes_ += seg.bytes;
  }
  Series().repl_backlog->Set(static_cast<int64_t>(backlog_bytes_));
}

Status DurableStore::MaybeCheckpoint(bool* checkpointed) {
  if (checkpointed != nullptr) *checkpointed = false;
  if (!open_) return Status::Internal("DurableStore not open");
  if (deferred_error_.ok() && wal_.bytes() < options_.checkpoint_wal_bytes &&
      wal_records() < options_.checkpoint_wal_records) {
    return Status::Ok();
  }
  if (checkpoint_backoff_remaining_.load(std::memory_order_relaxed) > 0) {
    checkpoint_backoff_remaining_.fetch_sub(1, std::memory_order_relaxed);
    checkpoints_backed_off_.fetch_add(1, std::memory_order_relaxed);
    return Status(last_checkpoint_error_.code(),
                  "checkpoint backed off after failure: " +
                      last_checkpoint_error_.message());
  }
  Status s = Checkpoint();
  if (s.ok()) {
    checkpoint_failure_streak_.store(0, std::memory_order_relaxed);
    Series().failure_streak->Set(0);
    last_checkpoint_error_ = Status::Ok();
    if (checkpointed != nullptr) *checkpointed = true;
  } else {
    const uint32_t streak =
        checkpoint_failure_streak_.load(std::memory_order_relaxed) + 1;
    checkpoint_failure_streak_.store(streak, std::memory_order_relaxed);
    Series().failure_streak->Set(streak);
    last_checkpoint_error_ = s;
    if (options_.checkpoint_backoff_cap > 0) {
      uint32_t shift = std::min<uint32_t>(streak - 1, 16u);
      checkpoint_backoff_remaining_.store(
          std::min<uint64_t>(1ull << shift, options_.checkpoint_backoff_cap),
          std::memory_order_relaxed);
    }
  }
  return s;
}

void DurableStore::Log(std::string_view op_payload) {
  BinaryWriter frame;
  frame.PutVarint(++last_sequence_);
  frame.PutBytes(op_payload.data(), op_payload.size());
  Status s = wal_.Append(frame.data());
  if (!s.ok() && deferred_error_.ok()) {
    deferred_error_ = s;
    read_only_.store(true, std::memory_order_relaxed);
    Series().read_only->Set(1);
  }
  // Ship only frames that reached the log: a latched append failure is
  // repaired by a checkpoint, after which behind followers re-bootstrap
  // from the snapshot — never from frames the disk never saw.
  if (s.ok() && shipping_hook_ != nullptr) {
    shipping_hook_->OnWalFrame(last_sequence_, frame.data());
  }
}

void DurableStore::OnAppend(const QueryRecord& record) {
  Log(wal::EncodeAppend(record));
}

void DurableStore::OnRewrite(QueryId id, const std::string& new_text) {
  Log(wal::EncodeRewrite(id, new_text, store_->Get(id)->signature));
}

void DurableStore::OnAnnotate(QueryId id, const Annotation& annotation) {
  Log(wal::EncodeAnnotate(id, annotation));
}

void DurableStore::OnFlagChange(QueryId id, QueryFlags flag, bool set) {
  Log(wal::EncodeFlagChange(id, flag, set));
}

void DurableStore::OnSetSession(QueryId id, SessionId session) {
  Log(wal::EncodeSetSession(id, session));
}

void DurableStore::OnSetQuality(QueryId id, double quality) {
  Log(wal::EncodeSetQuality(id, quality));
}

void DurableStore::OnDelete(QueryId id) { Log(wal::EncodeDelete(id)); }

void DurableStore::OnAclAddUser(const std::string& user,
                                const std::vector<std::string>& groups) {
  Log(wal::EncodeAddUser(user, groups));
}

void DurableStore::OnAclSetVisibility(QueryId id, Visibility visibility) {
  Log(wal::EncodeSetVisibility(id, visibility));
}

}  // namespace cqms::storage
