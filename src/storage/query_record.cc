#include "storage/query_record.h"

#include <atomic>

#include "sql/parser.h"

namespace cqms::storage {

QueryRecord::QueryRecord(const QueryRecord& other)
    : id(other.id),
      text(other.text),
      canonical_text(other.canonical_text),
      skeleton(other.skeleton),
      fingerprint(other.fingerprint),
      skeleton_fingerprint(other.skeleton_fingerprint),
      user(other.user),
      timestamp(other.timestamp),
      // Atomic load: `other` may be a shared view record whose Ast() a
      // concurrent reader is materializing right now.
      ast(std::atomic_load_explicit(&other.ast, std::memory_order_acquire)),
      text_parses(other.text_parses),
      components(other.components),
      stats(other.stats),
      summary(other.summary),
      signature(other.signature),
      sketch(other.sketch),
      annotations(other.annotations),
      session_id(other.session_id),
      flags(other.flags),
      quality(other.quality) {}

QueryRecord& QueryRecord::operator=(const QueryRecord& other) {
  if (this != &other) *this = QueryRecord(other);  // copy, then move-assign
  return *this;
}

const sql::SelectStatement* QueryRecord::Ast() const {
  std::shared_ptr<const sql::SelectStatement> cur =
      std::atomic_load_explicit(&ast, std::memory_order_acquire);
  if (cur == nullptr && text_parses) {
    auto parsed = sql::Parse(text);
    // A failure here means the snapshot's parsed bit lied about the
    // text; leave ast null and let the caller's null check skip the
    // record rather than crashing a background pass.
    if (!parsed.ok()) return nullptr;
    std::shared_ptr<const sql::SelectStatement> fresh =
        std::move(parsed).value();
    // Set-once: the first materializer wins; losers adopt the winner's
    // tree (cur is reloaded by the failed CAS) so every caller returns
    // the same pointer, kept alive by the member for the record's life.
    if (std::atomic_compare_exchange_strong_explicit(
            &ast, &cur, fresh, std::memory_order_acq_rel,
            std::memory_order_acquire)) {
      cur = std::move(fresh);
    }
  }
  return cur.get();
}

}  // namespace cqms::storage
