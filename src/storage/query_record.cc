#include "storage/query_record.h"

#include "sql/parser.h"

namespace cqms::storage {

const sql::SelectStatement* QueryRecord::Ast() const {
  if (ast == nullptr && text_parses) {
    auto parsed = sql::Parse(text);
    // A failure here means the snapshot's parsed bit lied about the
    // text; leave ast null and let the caller's null check skip the
    // record rather than crashing a background pass.
    if (parsed.ok()) ast = std::move(parsed).value();
  }
  return ast.get();
}

}  // namespace cqms::storage
