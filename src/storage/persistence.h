#ifndef CQMS_STORAGE_PERSISTENCE_H_
#define CQMS_STORAGE_PERSISTENCE_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "storage/env.h"
#include "storage/query_store.h"

namespace cqms::storage {

/// Writes a snapshot of the query log to `path` in the v1 line-oriented,
/// percent-escaped text format: per record the raw text, user, timestamp,
/// session, flags, quality, runtime stats and annotations, plus ACL user
/// memberships and per-query visibility. Kept as the debuggable /
/// greppable format; production paths should prefer SaveSnapshotV2
/// (snapshot_v2.h), which restores without re-parsing. The write is
/// atomic (tmp file + rename).
///
/// Output summaries are intentionally not persisted: they are data-
/// dependent caches the profiler rebuilds, and the paper's maintenance
/// component treats them as refreshable state anyway.
///
/// All functions here perform their I/O through `env` (null =
/// Env::Default(), the real filesystem); tests inject a
/// FaultInjectingEnv to exercise every failure path.
Status SaveSnapshot(const QueryStore& store, const std::string& path,
                    Env* env = nullptr);

/// Loads a snapshot into an empty store, dispatching on the file header:
/// the binary v2 magic routes to LoadSnapshotV2 (bulk restore, no
/// re-tokenization); anything else is read as the v1 text format, whose
/// parse-derived features (components, fingerprints, signatures) are
/// rebuilt from the stored text via the same path the profiler uses. In
/// both cases the loaded store is fully indexed and meta-queryable.
/// `wal_sequence` (optional) receives the v2 durability stamp — the
/// highest WAL sequence the snapshot covers — or 0 for v1 snapshots.
Status LoadSnapshot(QueryStore* store, const std::string& path,
                    uint64_t* wal_sequence = nullptr, Env* env = nullptr);

/// Writes `contents` to `path` atomically and durably: the bytes land
/// in `<path>.tmp`, are fsync'd (POSIX), and rename(2) moves them over
/// the target (whose directory entry is fsync'd too), so a crash — or a
/// power cut — mid-save can never clobber the last good snapshot, and a
/// published snapshot is on stable storage before anything (like the
/// WAL truncation that follows a checkpoint) relies on it. A failure of
/// the directory fsync (or of opening the directory) is a real
/// durability gap — the rename may not survive power loss — and is
/// propagated, not swallowed.
Status WriteFileAtomic(const std::string& path, std::string_view contents,
                       Env* env = nullptr);

/// Reads the whole file into `out` with one sized block read (the
/// istreambuf-iterator idiom reads per character — ruinous at snapshot
/// sizes). kIoError when the file cannot be opened or read.
Status ReadFileToString(const std::string& path, std::string* out,
                        Env* env = nullptr);

}  // namespace cqms::storage

#endif  // CQMS_STORAGE_PERSISTENCE_H_
