#ifndef CQMS_STORAGE_PERSISTENCE_H_
#define CQMS_STORAGE_PERSISTENCE_H_

#include <string>

#include "common/status.h"
#include "storage/query_store.h"

namespace cqms::storage {

/// Writes a snapshot of the query log to `path` in a line-oriented,
/// percent-escaped text format: per record the raw text, user, timestamp,
/// session, flags, quality, runtime stats and annotations, plus ACL user
/// memberships and per-query visibility.
///
/// Output summaries are intentionally not persisted: they are data-
/// dependent caches the profiler rebuilds, and the paper's maintenance
/// component treats them as refreshable state anyway.
Status SaveSnapshot(const QueryStore& store, const std::string& path);

/// Loads a snapshot previously written by SaveSnapshot into an empty
/// store. Parse-derived features (components, fingerprints) are rebuilt
/// from the stored text via the same path the profiler uses, so the
/// loaded store is fully indexed and meta-queryable.
Status LoadSnapshot(QueryStore* store, const std::string& path);

}  // namespace cqms::storage

#endif  // CQMS_STORAGE_PERSISTENCE_H_
