#include "storage/fault_env.h"

#include <algorithm>

namespace cqms::storage {

namespace {

std::string OpLabel(const char* op, const std::string& path,
                    uint64_t index) {
  return std::string(op) + " " + path + " (op " + std::to_string(index) + ")";
}

}  // namespace

// --- file handles ----------------------------------------------------------

class FaultWritableFile : public WritableFile {
 public:
  FaultWritableFile(FaultInjectingEnv* env, std::string path,
                    std::shared_ptr<FaultInjectingEnv::MemFile> file)
      : env_(env),
        path_(std::move(path)),
        file_(std::move(file)),
        generation_(env_->generation_) {}

  Status Append(std::string_view data) override {
    CQMS_RETURN_IF_ERROR(CheckHandle());
    FaultKind kind;
    Status s = env_->CheckOp("append", path_, /*is_write=*/true, &kind);
    if (!s.ok()) {
      if (kind == FaultKind::kShortWrite) {
        // Half the bytes landed before the write failed — the torn
        // frame a real partial write leaves in the stdio buffer.
        buffer_.append(data.data(), data.size() / 2);
      }
      return s;
    }
    buffer_.append(data.data(), data.size());
    return Status::Ok();
  }

  Status Flush() override {
    CQMS_RETURN_IF_ERROR(CheckHandle());
    CQMS_RETURN_IF_ERROR(env_->CheckOp("flush", path_, /*is_write=*/true));
    file_->flushed += buffer_;
    buffer_.clear();
    return Status::Ok();
  }

  Status Sync() override {
    CQMS_RETURN_IF_ERROR(CheckHandle());
    CQMS_RETURN_IF_ERROR(env_->CheckOp("sync", path_, /*is_write=*/true));
    file_->flushed += buffer_;
    buffer_.clear();
    file_->durable = file_->flushed;
    return Status::Ok();
  }

  Status Truncate(uint64_t size) override {
    CQMS_RETURN_IF_ERROR(CheckHandle());
    CQMS_RETURN_IF_ERROR(env_->CheckOp("truncate", path_, /*is_write=*/true));
    // ftruncate semantics on the OS view: shrink, or extend with NULs.
    // The unflushed buffer is discarded (the POSIX impl's best effort).
    buffer_.clear();
    file_->flushed.resize(size, '\0');
    return Status::Ok();
  }

  Status Close() override {
    CQMS_RETURN_IF_ERROR(CheckHandle());
    closed_ = true;
    Status s = env_->CheckOp("close", path_, /*is_write=*/true);
    if (!s.ok()) {
      // fclose failure loses whatever was still buffered.
      buffer_.clear();
      return s;
    }
    file_->flushed += buffer_;  // fclose flushes
    buffer_.clear();
    return Status::Ok();
  }

 private:
  Status CheckHandle() const {
    if (closed_) return Status::IoError("file already closed: " + path_);
    if (generation_ != env_->generation_) {
      return Status::IoError("stale file handle after crash: " + path_);
    }
    return Status::Ok();
  }

  FaultInjectingEnv* env_;
  std::string path_;
  std::shared_ptr<FaultInjectingEnv::MemFile> file_;
  std::string buffer_;
  uint64_t generation_;
  bool closed_ = false;
};

class FaultRandomAccessFile : public RandomAccessFile {
 public:
  FaultRandomAccessFile(FaultInjectingEnv* env, std::string path,
                        std::shared_ptr<FaultInjectingEnv::MemFile> file)
      : env_(env),
        path_(std::move(path)),
        file_(std::move(file)),
        generation_(env_->generation_) {}

  Status Size(uint64_t* size) override {
    CQMS_RETURN_IF_ERROR(CheckHandle());
    CQMS_RETURN_IF_ERROR(env_->CheckOp("size", path_, /*is_write=*/false));
    *size = file_->flushed.size();
    return Status::Ok();
  }

  Status Read(uint64_t offset, size_t n, std::string* out) override {
    CQMS_RETURN_IF_ERROR(CheckHandle());
    CQMS_RETURN_IF_ERROR(env_->CheckOp("read", path_, /*is_write=*/false));
    out->clear();
    if (offset >= file_->flushed.size()) return Status::Ok();
    out->assign(file_->flushed, offset,
                std::min<size_t>(n, file_->flushed.size() - offset));
    return Status::Ok();
  }

 private:
  Status CheckHandle() const {
    if (generation_ != env_->generation_) {
      return Status::IoError("stale file handle after crash: " + path_);
    }
    return Status::Ok();
  }

  FaultInjectingEnv* env_;
  std::string path_;
  std::shared_ptr<FaultInjectingEnv::MemFile> file_;
  uint64_t generation_;
};

// --- fault machinery -------------------------------------------------------

Status FaultInjectingEnv::CheckOp(const char* op, const std::string& path,
                                  bool is_write, FaultKind* out_kind) {
  if (out_kind != nullptr) *out_kind = FaultKind::kIoError;
  if (crashed_) {
    return Status::IoError("simulated crash: " + std::string(op) + " " + path);
  }
  const uint64_t index = op_count_++;
  op_trace_.push_back({index, op, path});

  FaultKind kind;
  bool fire = false;
  auto it = one_shot_.find(index);
  if (it != one_shot_.end()) {
    kind = it->second;
    one_shot_.erase(it);
    fire = true;
  } else if (sticky_from_ >= 0 &&
             index >= static_cast<uint64_t>(sticky_from_) && is_write) {
    kind = sticky_kind_;
    fire = true;
  }
  if (!fire) return Status::Ok();

  if (out_kind != nullptr) *out_kind = kind;
  switch (kind) {
    case FaultKind::kCrash:
      crashed_ = true;
      return Status::IoError("simulated crash at " + OpLabel(op, path, index));
    case FaultKind::kEnospc:
      return Status::ResourceExhausted("injected ENOSPC at " +
                                       OpLabel(op, path, index));
    case FaultKind::kShortWrite:
    case FaultKind::kIoError:
      return Status::IoError("injected I/O error at " +
                             OpLabel(op, path, index));
  }
  return Status::IoError("injected fault at " + OpLabel(op, path, index));
}

std::shared_ptr<FaultInjectingEnv::MemFile> FaultInjectingEnv::Find(
    const std::string& path) const {
  auto it = live_.find(path);
  return it == live_.end() ? nullptr : it->second;
}

void FaultInjectingEnv::Recover(bool power_loss) {
  crashed_ = false;
  ++generation_;
  if (power_loss) {
    // Only the synced layers survive: the namespace reverts to its
    // last SyncDir shape, every file's content to its last Sync.
    live_ = durable_ns_;
    for (auto& [name, file] : live_) file->flushed = file->durable;
  }
  // A process crash keeps live_ as-is: flushed bytes were in the OS,
  // which is still running. Unflushed handle buffers die with the
  // generation bump either way.
  op_count_ = 0;
  op_trace_.clear();
  one_shot_.clear();
  sticky_from_ = -1;
}

Status FaultInjectingEnv::CorruptFile(const std::string& path,
                                      uint64_t byte_offset,
                                      uint8_t bit_mask) {
  std::shared_ptr<MemFile> file = Find(path);
  if (file == nullptr) return Status::IoError("no such file: " + path);
  if (byte_offset >= file->flushed.size()) {
    return Status::InvalidArgument("corruption offset past EOF: " + path);
  }
  file->flushed[byte_offset] ^= static_cast<char>(bit_mask);
  if (byte_offset < file->durable.size()) {
    file->durable[byte_offset] ^= static_cast<char>(bit_mask);
  }
  return Status::Ok();
}

Status FaultInjectingEnv::ReadBack(const std::string& path,
                                   std::string* out) const {
  std::shared_ptr<MemFile> file = Find(path);
  if (file == nullptr) return Status::IoError("no such file: " + path);
  *out = file->flushed;
  return Status::Ok();
}

// --- Env -------------------------------------------------------------------

Status FaultInjectingEnv::NewWritableFile(const std::string& path,
                                          WriteMode mode,
                                          std::unique_ptr<WritableFile>* file) {
  CQMS_RETURN_IF_ERROR(CheckOp("open_write", path, /*is_write=*/true));
  const std::string dir = DirnameOf(path);
  if (dir != "." && dirs_.count(dir) == 0) {
    return Status::IoError("cannot open " + path + ": no such directory");
  }
  std::shared_ptr<MemFile> f = Find(path);
  if (f == nullptr) {
    f = std::make_shared<MemFile>();
    live_[path] = f;  // name not power-loss durable until SyncDir
  } else if (mode == WriteMode::kTruncate) {
    f->flushed.clear();  // O_TRUNC hits the OS view; durable layer
                         // reverts on power loss until the next Sync
  }
  *file = std::make_unique<FaultWritableFile>(this, path, std::move(f));
  return Status::Ok();
}

Status FaultInjectingEnv::NewRandomAccessFile(
    const std::string& path, std::unique_ptr<RandomAccessFile>* file) {
  CQMS_RETURN_IF_ERROR(CheckOp("open_read", path, /*is_write=*/false));
  std::shared_ptr<MemFile> f = Find(path);
  if (f == nullptr) return Status::IoError("no such file: " + path);
  *file = std::make_unique<FaultRandomAccessFile>(this, path, std::move(f));
  return Status::Ok();
}

bool FaultInjectingEnv::FileExists(const std::string& path) {
  // Returns bool — cannot report a fault, so it is not a fault point
  // and does not count.
  return live_.count(path) > 0 || dirs_.count(path) > 0;
}

Status FaultInjectingEnv::GetFileSize(const std::string& path,
                                      uint64_t* size) {
  CQMS_RETURN_IF_ERROR(CheckOp("stat", path, /*is_write=*/false));
  std::shared_ptr<MemFile> f = Find(path);
  if (f == nullptr) return Status::IoError("no such file: " + path);
  *size = f->flushed.size();
  return Status::Ok();
}

Status FaultInjectingEnv::RenameFile(const std::string& from,
                                     const std::string& to) {
  CQMS_RETURN_IF_ERROR(CheckOp("rename", from + " -> " + to,
                               /*is_write=*/true));
  auto it = live_.find(from);
  if (it == live_.end()) return Status::IoError("no such file: " + from);
  live_[to] = it->second;
  live_.erase(it);
  // Not power-loss durable until SyncDir: durable_ns_ still holds the
  // old shape.
  return Status::Ok();
}

Status FaultInjectingEnv::RemoveFile(const std::string& path) {
  // is_write=false: unlink must keep working on a full disk (it is the
  // operator's way out of ENOSPC). One-shot faults still apply.
  CQMS_RETURN_IF_ERROR(CheckOp("remove", path, /*is_write=*/false));
  if (live_.erase(path) == 0) {
    return Status::IoError("no such file: " + path);
  }
  return Status::Ok();
}

Status FaultInjectingEnv::TruncateFile(const std::string& path,
                                       uint64_t size) {
  CQMS_RETURN_IF_ERROR(CheckOp("truncate_file", path, /*is_write=*/true));
  std::shared_ptr<MemFile> f = Find(path);
  if (f == nullptr) return Status::IoError("no such file: " + path);
  f->flushed.resize(size, '\0');
  return Status::Ok();
}

Status FaultInjectingEnv::CreateDirIfMissing(const std::string& dir) {
  CQMS_RETURN_IF_ERROR(CheckOp("mkdir", dir, /*is_write=*/true));
  if (live_.count(dir) > 0) {
    return Status::IoError("cannot create directory " + dir +
                           ": not a directory");
  }
  dirs_.insert(dir);  // directories are durable immediately (see header)
  return Status::Ok();
}

Status FaultInjectingEnv::SyncDir(const std::string& dir) {
  CQMS_RETURN_IF_ERROR(CheckOp("syncdir", dir, /*is_write=*/true));
  if (dirs_.count(dir) == 0) {
    return Status::IoError("no such directory: " + dir);
  }
  // Persist the directory's current shape: every live entry in `dir`
  // becomes durable; every durable entry no longer live (renamed away
  // or removed) is forgotten.
  for (const auto& [name, file] : live_) {
    if (DirnameOf(name) == dir) durable_ns_[name] = file;
  }
  for (auto it = durable_ns_.begin(); it != durable_ns_.end();) {
    if (DirnameOf(it->first) == dir && live_.count(it->first) == 0) {
      it = durable_ns_.erase(it);
    } else {
      ++it;
    }
  }
  return Status::Ok();
}

Status FaultInjectingEnv::ListDir(const std::string& dir,
                                  std::vector<std::string>* names) {
  CQMS_RETURN_IF_ERROR(CheckOp("listdir", dir, /*is_write=*/false));
  if (dirs_.count(dir) == 0) {
    return Status::IoError("no such directory: " + dir);
  }
  names->clear();
  const std::string prefix = dir + "/";
  for (const auto& [name, file] : live_) {
    if (DirnameOf(name) == dir) names->push_back(name.substr(prefix.size()));
  }
  for (const std::string& d : dirs_) {
    if (d.size() > prefix.size() && d.compare(0, prefix.size(), prefix) == 0 &&
        d.find('/', prefix.size()) == std::string::npos) {
      names->push_back(d.substr(prefix.size()));
    }
  }
  return Status::Ok();
}

}  // namespace cqms::storage
