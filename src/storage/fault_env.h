#ifndef CQMS_STORAGE_FAULT_ENV_H_
#define CQMS_STORAGE_FAULT_ENV_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "storage/env.h"

namespace cqms::storage {

/// What an armed fault point does when an I/O operation reaches it.
enum class FaultKind {
  kIoError,     ///< The op fails with kIoError; no effect on the disk.
  kEnospc,      ///< The op fails with kResourceExhausted (disk full).
  kShortWrite,  ///< Append lands only a prefix, then fails (other ops
                ///< behave like kIoError).
  kCrash,       ///< The process dies *before* the op takes effect: the
                ///< simulated disk freezes and every later op fails
                ///< until Recover().
};

/// One entry of the operation trace: everything needed to name a fault
/// point in a test failure message.
struct FaultEnvOp {
  uint64_t index;   ///< 0-based position in the global op sequence.
  std::string op;   ///< "append", "sync", "rename", ...
  std::string path;
};

/// A deterministic in-memory filesystem with programmable fault points,
/// built for crash-loop testing: run a workload once against a clean
/// env to count its I/O operations, then re-run it once per operation
/// with a crash or error injected there, recover, and check invariants.
///
/// The simulated disk models the same three durability layers the POSIX
/// env documents:
///
///   - bytes Append()ed but not Flush()ed live in the handle and are
///     lost in ANY crash (they were process memory);
///   - Flush()ed bytes survive a process crash (`Recover(false)`) but
///     not power loss — they were in the OS cache;
///   - Sync()ed bytes survive power loss (`Recover(true)`).
///
/// The *namespace* is durable separately from file content, exactly as
/// on a real filesystem: a created or renamed name survives power loss
/// only after a successful SyncDir() of its directory. Directories
/// themselves are durable as soon as they are created (one
/// simplification; CQMS creates its directory once, before any data is
/// valuable). A power loss therefore reverts both every file's content
/// to its last-synced bytes and the directory map to its last-synced
/// shape — which is how an fsync'd WAL whose directory entry was never
/// synced vanishes, taking its acknowledged records with it.
///
/// Fault points are addressed by the global op counter. All Env and
/// file-handle operations count except FileExists (it returns bool and
/// cannot fail). `InjectAt(i, kind)` arms a one-shot fault at op `i`;
/// `FailAllFrom(i, kEnospc)` makes every write-path op from `i` on fail
/// with kResourceExhausted while reads keep working — the full-disk
/// degradation mode. After a kCrash fault (or CrashNow()) every op
/// fails with "simulated crash" until Recover(), which also invalidates
/// all outstanding handles, so code that survives recovery cannot
/// accidentally keep writing through a pre-crash file object.
///
/// Single-threaded, like the storage layer it tests. Not in any test
/// framework's namespace: it is a library class, usable from benches.
class FaultInjectingEnv : public Env {
 public:
  FaultInjectingEnv() = default;

  // --- fault programming ---------------------------------------------------

  /// Arms a one-shot fault: the op whose index equals `op_index` fails
  /// with `kind` (kCrash freezes the disk instead of just failing).
  void InjectAt(uint64_t op_index, FaultKind kind) {
    one_shot_[op_index] = kind;
  }

  /// Every write-path op with index >= `op_index` fails with `kind`
  /// (reads, removes and listings keep succeeding — deleting data to
  /// free space must work on a full disk).
  void FailAllFrom(uint64_t op_index, FaultKind kind) {
    sticky_from_ = static_cast<int64_t>(op_index);
    sticky_kind_ = kind;
  }

  void ClearFaults() {
    one_shot_.clear();
    sticky_from_ = -1;
  }

  /// Total faultable operations seen so far (the addressing space for
  /// InjectAt / FailAllFrom).
  uint64_t op_count() const { return op_count_; }

  /// Every op seen, in order — for diagnosing which fault point a
  /// failing crash-loop iteration was.
  const std::vector<FaultEnvOp>& op_trace() const { return op_trace_; }

  // --- crash & recovery ----------------------------------------------------

  /// Freezes the disk as a kCrash fault would, without arming one.
  void CrashNow() { crashed_ = true; }

  bool crashed() const { return crashed_; }

  /// Brings the simulated machine back up. `power_loss` selects which
  /// layers survived: false (process crash) keeps everything flushed to
  /// the OS; true (power loss) keeps only what was fsync'd — file
  /// content reverts to its last Sync and the namespace to its last
  /// SyncDir. Outstanding handles turn stale either way. Also resets
  /// the op counter, trace and armed faults: recovery code is a fresh
  /// fault-addressing space.
  void Recover(bool power_loss);

  /// Flips one bit of a stored file in every layer — simulated bit rot
  /// that survives recovery. `byte_offset` addresses the flushed bytes.
  Status CorruptFile(const std::string& path, uint64_t byte_offset,
                     uint8_t bit_mask = 0x01);

  /// The flushed content of `path` (what a reader would see now).
  Status ReadBack(const std::string& path, std::string* out) const;

  // --- Env -----------------------------------------------------------------

  Status NewWritableFile(const std::string& path, WriteMode mode,
                         std::unique_ptr<WritableFile>* file) override;
  Status NewRandomAccessFile(
      const std::string& path, std::unique_ptr<RandomAccessFile>* file) override;
  bool FileExists(const std::string& path) override;
  Status GetFileSize(const std::string& path, uint64_t* size) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status RemoveFile(const std::string& path) override;
  Status TruncateFile(const std::string& path, uint64_t size) override;
  Status CreateDirIfMissing(const std::string& dir) override;
  Status SyncDir(const std::string& dir) override;
  Status ListDir(const std::string& dir,
                 std::vector<std::string>* names) override;

 private:
  friend class FaultWritableFile;
  friend class FaultRandomAccessFile;

  /// One stored file. Handles and both namespace maps share it, so a
  /// Sync through a handle updates the durable bytes no matter which
  /// name currently points at the inode — like a real inode.
  struct MemFile {
    std::string flushed;  ///< OS view: survives a process crash.
    std::string durable;  ///< On-media view: survives power loss.
  };

  /// Counts the op, records it in the trace, and consults the armed
  /// faults. Returns non-OK when the op must fail (arming crashed_
  /// first for kCrash); `out_kind` reports which kind fired so Append
  /// can implement the short-write prefix.
  Status CheckOp(const char* op, const std::string& path, bool is_write,
                 FaultKind* out_kind = nullptr);

  std::shared_ptr<MemFile> Find(const std::string& path) const;

  std::map<std::string, std::shared_ptr<MemFile>> live_;
  std::map<std::string, std::shared_ptr<MemFile>> durable_ns_;
  std::set<std::string> dirs_;

  uint64_t op_count_ = 0;
  std::vector<FaultEnvOp> op_trace_;
  std::map<uint64_t, FaultKind> one_shot_;
  int64_t sticky_from_ = -1;
  FaultKind sticky_kind_ = FaultKind::kEnospc;
  bool crashed_ = false;
  /// Bumped by Recover(); handles created before no longer match and
  /// fail with "stale file handle".
  uint64_t generation_ = 0;
};

}  // namespace cqms::storage

#endif  // CQMS_STORAGE_FAULT_ENV_H_
