#include "storage/env.h"

#include <cerrno>
#include <cstdio>
#include <fstream>

#ifdef __unix__
#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>
#endif

namespace cqms::storage {

namespace {

/// Classifies the current errno: a full disk is kResourceExhausted —
/// DurableStore latches read-only on it and recovers once space
/// returns — everything else stays a generic I/O error.
Status ErrnoStatus(std::string msg) {
#ifdef __unix__
  if (errno == ENOSPC || errno == EDQUOT || errno == EFBIG) {
    return Status::ResourceExhausted(std::move(msg));
  }
#endif
  return Status::IoError(std::move(msg));
}

class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(std::FILE* file, std::string path)
      : file_(file), path_(std::move(path)) {}
  ~PosixWritableFile() override {
    if (file_ != nullptr) std::fclose(file_);
  }

  Status Append(std::string_view data) override {
    if (data.empty()) return Status::Ok();
    if (std::fwrite(data.data(), 1, data.size(), file_) != data.size()) {
      return ErrnoStatus("write failed: " + path_);
    }
    return Status::Ok();
  }

  Status Flush() override {
    if (std::fflush(file_) != 0) {
      return ErrnoStatus("flush failed: " + path_);
    }
    return Status::Ok();
  }

  Status Sync() override {
    CQMS_RETURN_IF_ERROR(Flush());
#ifdef __unix__
    if (fsync(fileno(file_)) != 0) {
      return ErrnoStatus("fsync failed: " + path_);
    }
#endif
    return Status::Ok();
  }

  Status Truncate(uint64_t size) override {
#ifdef __unix__
    // Drop whatever stdio still buffers (best effort — a failed flush
    // here means those bytes never reach the file, which is exactly
    // what a rollback wants) and cut the file back.
    std::fflush(file_);
    if (::ftruncate(fileno(file_), static_cast<off_t>(size)) != 0) {
      return ErrnoStatus("ftruncate failed: " + path_);
    }
    std::fseek(file_, 0, SEEK_END);
    return Status::Ok();
#else
    (void)size;
    return Status::Unsupported("truncate of an open file: " + path_);
#endif
  }

  Status Close() override {
    if (file_ == nullptr) return Status::Ok();
    std::FILE* f = file_;
    file_ = nullptr;
    if (std::fclose(f) != 0) {
      return ErrnoStatus("close failed: " + path_);
    }
    return Status::Ok();
  }

 private:
  std::FILE* file_;
  std::string path_;
};

class PosixRandomAccessFile : public RandomAccessFile {
 public:
  PosixRandomAccessFile(std::FILE* file, std::string path)
      : file_(file), path_(std::move(path)) {}
  ~PosixRandomAccessFile() override {
    if (file_ != nullptr) std::fclose(file_);
  }

  Status Size(uint64_t* size) override {
    if (std::fseek(file_, 0, SEEK_END) != 0) {
      return Status::IoError("cannot seek: " + path_);
    }
    long end = std::ftell(file_);
    if (end < 0) return Status::IoError("cannot size: " + path_);
    *size = static_cast<uint64_t>(end);
    return Status::Ok();
  }

  Status Read(uint64_t offset, size_t n, std::string* out) override {
    out->clear();
    if (std::fseek(file_, static_cast<long>(offset), SEEK_SET) != 0) {
      return Status::IoError("cannot seek: " + path_);
    }
    out->resize(n);
    size_t got = std::fread(out->data(), 1, n, file_);
    if (got < n && std::ferror(file_) != 0) {
      return Status::IoError("read failed: " + path_);
    }
    out->resize(got);
    return Status::Ok();
  }

 private:
  std::FILE* file_;
  std::string path_;
};

class PosixEnv : public Env {
 public:
  Status NewWritableFile(const std::string& path, WriteMode mode,
                         std::unique_ptr<WritableFile>* file) override {
    std::FILE* f =
        std::fopen(path.c_str(), mode == WriteMode::kAppend ? "ab" : "wb");
    if (f == nullptr) {
      return ErrnoStatus("cannot open for writing: " + path);
    }
    *file = std::make_unique<PosixWritableFile>(f, path);
    return Status::Ok();
  }

  Status NewRandomAccessFile(
      const std::string& path,
      std::unique_ptr<RandomAccessFile>* file) override {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) {
      return Status::IoError("cannot open for reading: " + path);
    }
    *file = std::make_unique<PosixRandomAccessFile>(f, path);
    return Status::Ok();
  }

  bool FileExists(const std::string& path) override {
#ifdef __unix__
    return ::access(path.c_str(), F_OK) == 0;
#else
    std::ifstream f(path, std::ios::binary);
    return f.good();
#endif
  }

  Status GetFileSize(const std::string& path, uint64_t* size) override {
#ifdef __unix__
    struct stat st;
    if (::stat(path.c_str(), &st) != 0) {
      return Status::IoError("cannot stat: " + path);
    }
    *size = static_cast<uint64_t>(st.st_size);
    return Status::Ok();
#else
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (!in) return Status::IoError("cannot open: " + path);
    std::streamsize end = in.tellg();
    if (end < 0) return Status::IoError("cannot size: " + path);
    *size = static_cast<uint64_t>(end);
    return Status::Ok();
#endif
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    if (std::rename(from.c_str(), to.c_str()) != 0) {
      return ErrnoStatus("rename failed: " + from + " -> " + to);
    }
    return Status::Ok();
  }

  Status RemoveFile(const std::string& path) override {
    if (std::remove(path.c_str()) != 0) {
      return Status::IoError("cannot remove: " + path);
    }
    return Status::Ok();
  }

  Status TruncateFile(const std::string& path, uint64_t size) override {
#ifdef __unix__
    if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
      return Status::IoError("cannot truncate: " + path);
    }
    return Status::Ok();
#else
    // Portable fallback: rewrite the valid prefix.
    std::ifstream in(path, std::ios::binary);
    if (!in) return Status::IoError("cannot open: " + path);
    std::string data(size, '\0');
    in.read(data.data(), static_cast<std::streamsize>(size));
    if (in.gcount() != static_cast<std::streamsize>(size)) {
      return Status::IoError("cannot read valid prefix: " + path);
    }
    in.close();
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(data.data(), static_cast<std::streamsize>(size));
    return out.good() ? Status::Ok()
                      : Status::IoError("cannot rewrite: " + path);
#endif
  }

  Status CreateDirIfMissing(const std::string& dir) override {
#ifdef __unix__
    struct stat st;
    if (::stat(dir.c_str(), &st) == 0) {
      return S_ISDIR(st.st_mode) ? Status::Ok()
                                 : Status::IoError("not a directory: " + dir);
    }
    if (::mkdir(dir.c_str(), 0755) != 0) {
      return ErrnoStatus("cannot create directory: " + dir);
    }
    return Status::Ok();
#else
    (void)dir;
    return Status::Ok();
#endif
  }

  Status SyncDir(const std::string& dir) override {
#ifdef __unix__
    int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (dir_fd < 0) {
      return Status::IoError("cannot open directory for fsync: " + dir);
    }
    if (fsync(dir_fd) != 0) {
      Status s = ErrnoStatus("directory fsync failed: " + dir);
      ::close(dir_fd);
      return s;
    }
    if (::close(dir_fd) != 0) {
      return Status::IoError("directory close failed: " + dir);
    }
#else
    (void)dir;
#endif
    return Status::Ok();
  }

  Status ListDir(const std::string& dir,
                 std::vector<std::string>* names) override {
    names->clear();
#ifdef __unix__
    DIR* d = ::opendir(dir.c_str());
    if (d == nullptr) return Status::IoError("cannot open directory: " + dir);
    while (struct dirent* entry = ::readdir(d)) {
      std::string name = entry->d_name;
      if (name == "." || name == "..") continue;
      names->push_back(std::move(name));
    }
    ::closedir(d);
#else
    (void)dir;
#endif
    return Status::Ok();
  }
};

}  // namespace

Env* Env::Default() {
  static PosixEnv* env = new PosixEnv();
  return env;
}

std::string DirnameOf(const std::string& path) {
  size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? "." : path.substr(0, slash);
}

}  // namespace cqms::storage
