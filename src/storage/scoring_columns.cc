#include "storage/scoring_columns.h"

#include <algorithm>

#include "common/string_util.h"

namespace cqms::storage {

namespace {

uint16_t Clamp16(size_t n) {
  return static_cast<uint16_t>(std::min<size_t>(n, 0xFFFF));
}

}  // namespace

void ScoringColumns::Reserve(size_t records) {
  flags_.reserve(records);
  quality_.reserve(records);
  timestamp_.reserve(records);
  owner_.reserve(records);
  pop_slot_.reserve(records);
  sig_.reserve(records);
  pop_counts_.reserve(records);
}

ScoringColumns::SignatureRef ScoringColumns::PackRecord(
    const QueryRecord& record) {
  const SimilaritySignature& sig = record.signature;
  SignatureRef ref;
  ref.begin = static_cast<uint32_t>(sym_arena_.size());
  // Signature vectors are bounded by the tokens of one SQL statement, so
  // the u16 section lengths cannot saturate in practice. If a
  // machine-generated monster ever does overflow one, the section is
  // clamped and the row is marked signature-invalid below, so scoring
  // falls back to the record path instead of silently diverging from it.
  ref.n_tables = Clamp16(sig.tables.size());
  ref.n_skeletons = Clamp16(sig.predicate_skeletons.size());
  ref.n_attributes = Clamp16(sig.attributes.size());
  ref.n_projections = Clamp16(sig.projections.size());
  ref.n_tokens = Clamp16(sig.text_tokens.size());
  const bool clamped = ref.n_tables != sig.tables.size() ||
                       ref.n_skeletons != sig.predicate_skeletons.size() ||
                       ref.n_attributes != sig.attributes.size() ||
                       ref.n_projections != sig.projections.size() ||
                       ref.n_tokens != sig.text_tokens.size();
  auto append_run = [this](const std::vector<Symbol>& v, uint16_t n) {
    sym_arena_.insert(sym_arena_.end(), v.begin(), v.begin() + n);
  };
  append_run(sig.tables, ref.n_tables);
  append_run(sig.predicate_skeletons, ref.n_skeletons);
  append_run(sig.attributes, ref.n_attributes);
  append_run(sig.projections, ref.n_projections);
  append_run(sig.text_tokens, ref.n_tokens);

  ref.out_begin = static_cast<uint32_t>(out_arena_.size());
  ref.n_output = static_cast<uint32_t>(sig.output_rows.size());
  out_arena_.insert(out_arena_.end(), sig.output_rows.begin(),
                    sig.output_rows.end());

  std::string lowered = ToLower(record.text);
  ref.text_begin = static_cast<uint32_t>(text_arena_.size());
  ref.text_len = static_cast<uint32_t>(lowered.size());
  text_arena_ += lowered;

  ref.bits = 0;
  if (sig.valid && !clamped) ref.bits |= kSigValid;
  if (!record.parse_failed()) ref.bits |= kSigParsed;
  if (sig.output_empty_computed) ref.bits |= kSigOutputEmptyComputed;
  return ref;
}

void ScoringColumns::AppendRecord(const QueryRecord& record, uint32_t pop_slot,
                                  Symbol owner) {
  flags_.push_back(record.flags);
  quality_.push_back(record.quality);
  timestamp_.push_back(record.timestamp);
  owner_.push_back(owner);
  pop_slot_.push_back(pop_slot);
  sig_.push_back(PackRecord(record));
}

void ScoringColumns::RewriteRecord(const QueryRecord& record,
                                   uint32_t pop_slot) {
  size_t idx = static_cast<size_t>(record.id);
  const SignatureRef& old = sig_[idx];
  arena_garbage_ += sizeof(Symbol) * (old.n_tables + old.n_skeletons +
                                      old.n_attributes + old.n_projections +
                                      old.n_tokens) +
                    sizeof(uint64_t) * old.n_output + old.text_len;
  pop_slot_[idx] = pop_slot;
  flags_[idx] = record.flags;
  sig_[idx] = PackRecord(record);
}

bool ScoringColumns::SyncOutput(const QueryRecord& record) {
  size_t idx = static_cast<size_t>(record.id);
  SignatureRef& ref = sig_[idx];
  const SimilaritySignature& sig = record.signature;
  // Stats refresh usually re-executes to the same output; reuse the
  // existing run when the hashes are unchanged instead of orphaning it.
  bool unchanged =
      ref.n_output == sig.output_rows.size() &&
      std::equal(sig.output_rows.begin(), sig.output_rows.end(),
                 out_arena_.begin() + ref.out_begin);
  if (!unchanged) {
    arena_garbage_ += sizeof(uint64_t) * ref.n_output;
    ref.out_begin = static_cast<uint32_t>(out_arena_.size());
    ref.n_output = static_cast<uint32_t>(sig.output_rows.size());
    out_arena_.insert(out_arena_.end(), sig.output_rows.begin(),
                      sig.output_rows.end());
  }
  const uint8_t old_bits = ref.bits;
  if (sig.output_empty_computed) {
    ref.bits |= kSigOutputEmptyComputed;
  } else {
    ref.bits &= static_cast<uint8_t>(~kSigOutputEmptyComputed);
  }
  return !unchanged || ref.bits != old_bits;
}

size_t ScoringColumns::Compact() {
  // Size the fresh arenas exactly: one pass summing the live runs, one
  // pass copying them. Directory entries are rewritten in id order, so
  // the compacted arenas are also append-ordered again.
  size_t live_syms = 0, live_out = 0, live_text = 0;
  for (const SignatureRef& ref : sig_) {
    live_syms += static_cast<size_t>(ref.n_tables) + ref.n_skeletons +
                 ref.n_attributes + ref.n_projections + ref.n_tokens;
    live_out += ref.n_output;
    live_text += ref.text_len;
  }
  const size_t reclaimed =
      sizeof(Symbol) * (sym_arena_.size() - live_syms) +
      sizeof(uint64_t) * (out_arena_.size() - live_out) +
      (text_arena_.size() - live_text);

  std::vector<Symbol> new_sym;
  new_sym.reserve(live_syms);
  std::vector<uint64_t> new_out;
  new_out.reserve(live_out);
  std::string new_text;
  new_text.reserve(live_text);
  for (SignatureRef& ref : sig_) {
    const size_t n_syms = static_cast<size_t>(ref.n_tables) + ref.n_skeletons +
                          ref.n_attributes + ref.n_projections + ref.n_tokens;
    const uint32_t begin = static_cast<uint32_t>(new_sym.size());
    new_sym.insert(new_sym.end(), sym_arena_.begin() + ref.begin,
                   sym_arena_.begin() + ref.begin + n_syms);
    ref.begin = begin;
    const uint32_t out_begin = static_cast<uint32_t>(new_out.size());
    new_out.insert(new_out.end(), out_arena_.begin() + ref.out_begin,
                   out_arena_.begin() + ref.out_begin + ref.n_output);
    ref.out_begin = out_begin;
    const uint32_t text_begin = static_cast<uint32_t>(new_text.size());
    new_text.append(text_arena_, ref.text_begin, ref.text_len);
    ref.text_begin = text_begin;
  }
  sym_arena_ = std::move(new_sym);
  out_arena_ = std::move(new_out);
  text_arena_ = std::move(new_text);
  arena_garbage_ = 0;
  return reclaimed;
}

uint32_t ScoringColumns::NewPopularitySlot() {
  pop_counts_.push_back(0);
  return static_cast<uint32_t>(pop_counts_.size() - 1);
}

bool ScoringColumns::TokenPresent(QueryId id, Symbol token) const {
  SymbolSpan span = tokens(id);
  return std::binary_search(span.data, span.data + span.size, token);
}

}  // namespace cqms::storage
