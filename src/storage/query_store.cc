#include "storage/query_store.h"

#include <algorithm>

#include "common/clock.h"
#include "common/sorted_vector.h"
#include "common/string_util.h"
#include "obs/metrics.h"
#include "storage/record_builder.h"

namespace cqms::storage {

namespace {

using db::ColumnDef;
using db::TableSchema;
using db::Value;
using db::ValueType;

}  // namespace

/// Forwards ACL mutations into the store's publication counter. Only
/// registered on acl_ (never on the store itself), so the record
/// callbacks can stay no-ops.
class QueryStore::AclViewTick : public StoreListener {
 public:
  explicit AclViewTick(QueryStore* store) : store_(store) {}

  void OnAppend(const QueryRecord&) override {}
  void OnRewrite(QueryId, const std::string&) override {}
  void OnAnnotate(QueryId, const Annotation&) override {}
  void OnFlagChange(QueryId, QueryFlags, bool) override {}
  void OnSetSession(QueryId, SessionId) override {}
  void OnSetQuality(QueryId, double) override {}
  void OnDelete(QueryId) override {}
  void OnAclAddUser(const std::string&,
                    const std::vector<std::string>&) override {
    store_->MutationTick();
  }
  void OnAclSetVisibility(QueryId, Visibility) override {
    store_->MutationTick();
  }

 private:
  QueryStore* store_;
};

QueryStore::QueryStore(LshParams lsh_params) : lsh_(lsh_params) {
  // Materialize the paper's feature relations (Figure 1). The embedded
  // database is CQMS-internal; failures here are programming errors.
  Status s = feature_db_.CreateTable(TableSchema(
      "Queries", {{"qid", ValueType::kInt},
                  {"qtext", ValueType::kString},
                  {"usr", ValueType::kString},
                  {"ts", ValueType::kInt},
                  {"exec_micros", ValueType::kInt},
                  {"result_rows", ValueType::kInt},
                  {"succeeded", ValueType::kBool}}));
  s = feature_db_.CreateTable(
      TableSchema("DataSources", {{"qid", ValueType::kInt},
                                  {"relname", ValueType::kString}}));
  s = feature_db_.CreateTable(
      TableSchema("Attributes", {{"qid", ValueType::kInt},
                                 {"attrname", ValueType::kString},
                                 {"relname", ValueType::kString}}));
  s = feature_db_.CreateTable(
      TableSchema("Predicates", {{"qid", ValueType::kInt},
                                 {"attrname", ValueType::kString},
                                 {"relname", ValueType::kString},
                                 {"op", ValueType::kString},
                                 {"const_val", ValueType::kString}}));
  (void)s;
  queries_table_ = feature_db_.GetMutableTable("Queries");
  datasources_table_ = feature_db_.GetMutableTable("DataSources");
  attributes_table_ = feature_db_.GetMutableTable("Attributes");
  predicates_table_ = feature_db_.GetMutableTable("Predicates");
}

void QueryStore::AddListener(StoreListener* listener) {
  if (listener == nullptr) return;
  if (std::find(listeners_.begin(), listeners_.end(), listener) ==
      listeners_.end()) {
    listeners_.push_back(listener);
  }
  acl_.AddListener(listener);
}

void QueryStore::RemoveListener(StoreListener* listener) {
  listeners_.erase(std::remove(listeners_.begin(), listeners_.end(), listener),
                   listeners_.end());
  acl_.RemoveListener(listener);
}

uint32_t QueryStore::PopularitySlotFor(const QueryRecord& record) {
  if (record.parse_failed()) return ScoringColumns::kNoPopularitySlot;
  auto [it, inserted] = pop_slot_of_.try_emplace(record.fingerprint, 0);
  if (inserted) it->second = scoring_.NewPopularitySlot();
  return it->second;
}

QueryId QueryStore::Append(QueryRecord record) {
  // The profiler attaches the output summary after BuildRecordFromText,
  // so the summary contribution is folded in here, where the record's
  // features stop changing. Hand-built records (and text-only profiling)
  // arrive without a signature, and transient probe signatures hold
  // hash-derived ids the keyword index must not see — both get the full
  // interned computation. Callers must not edit `text` between
  // BuildRecordFromText and Append.
  if (record.signature.valid && !record.signature.transient) {
    UpdateOutputSignature(&record);
    // BuildRecordFromText computes the sketch with the signature, but a
    // hand-assembled signature may arrive without one.
    if (!record.sketch.valid) {
      record.sketch = ComputeMinHashSketch(record.signature);
    }
  } else {
    // Recomputes the sketch too: a transient sketch hashes probe-local
    // Symbol ids, so it must be rebuilt from the interned signature.
    ComputeSimilaritySignature(&record);
  }
  QueryId id = FinishAppend(std::move(record));
  for (StoreListener* l : listeners_) l->OnAppend(records_.back());
  MutationTick();
  return id;
}

void QueryStore::ReserveForRestore(size_t records, size_t symbols) {
  // Defer the feature-relation rebuild: the SQL meta-query surface is
  // touched far less often than the cold-start path, so its rows
  // materialize on first feature_db() access instead of inside the
  // restore loop.
  feature_rows_lazy_ = true;
  postings_.by_table.reserve(symbols);
  postings_.by_attribute.reserve(symbols);
  postings_.by_keyword.reserve(symbols);
  postings_.by_skeleton.reserve(records);
  postings_.by_fingerprint.reserve(records);
  pop_slot_of_.reserve(records);
  // by_user is deliberately not pre-sized: distinct users are orders
  // of magnitude fewer than records, so its rehashing is noise.
  lsh_.Reserve(records);
  scoring_.Reserve(records);
}

QueryId QueryStore::RestoreAppend(QueryRecord record) {
  QueryId id = FinishAppend(std::move(record));
  MutationTick();
  return id;
}

QueryId QueryStore::FinishAppend(QueryRecord record) {
  record.id = static_cast<QueryId>(records_.size());
  max_timestamp_ = std::max(max_timestamp_, record.timestamp);
  records_.push_back(std::make_shared<QueryRecord>(std::move(record)));
  const QueryRecord& stored = records_.back();
  IndexRecord(stored);
  uint32_t slot = PopularitySlotFor(stored);
  if (slot != ScoringColumns::kNoPopularitySlot) scoring_.AddSlotRef(slot);
  scoring_.AppendRecord(stored, slot, GlobalInterner().Intern(stored.user));
  if (!feature_rows_lazy_) InsertFeatureRows(stored);
  return stored.id;
}

void QueryStore::MaterializeFeatureRows() const {
  feature_rows_lazy_ = false;
  for (const QueryRecord& r : records_) InsertFeatureRows(r);
}

void QueryStore::IndexRecord(const QueryRecord& record) {
  // Table and attribute posting lists are keyed by the signature's
  // interned Symbols (sorted, deduplicated) — no re-hashing of strings.
  for (Symbol t : record.signature.tables) {
    InsertSorted(&postings_.by_table[t], record.id);
  }
  for (Symbol a : record.signature.attributes) {
    InsertSorted(&postings_.by_attribute[a], record.id);
  }
  InsertSorted(&postings_.by_user[record.user], record.id);
  // The signature's token vector is exactly the deduplicated
  // ExtractWords(text), already interned — reuse it.
  for (Symbol token : record.signature.text_tokens) {
    InsertSorted(&postings_.by_keyword[token], record.id);
  }
  if (!record.parse_failed()) {
    InsertSorted(&postings_.by_skeleton[record.skeleton_fingerprint], record.id);
    InsertSorted(&postings_.by_fingerprint[record.fingerprint], record.id);
  }
  lsh_.Insert(record.id, record.sketch);
}

void QueryStore::UnindexRecord(const QueryRecord& record) {
  for (Symbol t : record.signature.tables) {
    auto it = postings_.by_table.find(t);
    if (it != postings_.by_table.end()) EraseSorted(&it->second, record.id);
  }
  for (Symbol a : record.signature.attributes) {
    auto it = postings_.by_attribute.find(a);
    if (it != postings_.by_attribute.end()) EraseSorted(&it->second, record.id);
  }
  for (Symbol token : record.signature.text_tokens) {
    auto it = postings_.by_keyword.find(token);
    if (it != postings_.by_keyword.end()) EraseSorted(&it->second, record.id);
  }
  if (!record.parse_failed()) {
    auto it = postings_.by_skeleton.find(record.skeleton_fingerprint);
    if (it != postings_.by_skeleton.end()) EraseSorted(&it->second, record.id);
    auto fit = postings_.by_fingerprint.find(record.fingerprint);
    if (fit != postings_.by_fingerprint.end()) {
      EraseSorted(&fit->second, record.id);
    }
  }
  lsh_.Remove(record.id, record.sketch);
}

void QueryStore::InsertFeatureRows(const QueryRecord& record) const {
  Status s = queries_table_->Append(
      {Value::Int(record.id), Value::String(record.text),
       Value::String(record.user), Value::Int(record.timestamp),
       Value::Int(record.stats.execution_micros),
       Value::Int(static_cast<int64_t>(record.stats.result_rows)),
       Value::Bool(record.stats.succeeded)});
  (void)s;
  if (record.parse_failed()) return;
  for (const std::string& t : record.components.tables) {
    s = datasources_table_->Append({Value::Int(record.id), Value::String(t)});
  }
  for (const auto& [rel, attr] : record.components.attributes) {
    s = attributes_table_->Append(
        {Value::Int(record.id), Value::String(attr), Value::String(rel)});
  }
  for (const auto& p : record.components.predicates) {
    s = predicates_table_->Append(
        {Value::Int(record.id), Value::String(p.attribute),
         Value::String(p.relation), Value::String(p.op),
         Value::String(p.constant)});
  }
}

const QueryRecord* QueryStore::Get(QueryId id) const {
  if (id < 0 || static_cast<size_t>(id) >= records_.size()) return nullptr;
  return records_.ptr(static_cast<size_t>(id)).get();
}

QueryRecord* QueryStore::GetMutable(QueryId id) {
  if (id < 0 || static_cast<size_t>(id) >= records_.size()) return nullptr;
  std::shared_ptr<QueryRecord>& slot =
      records_.mutable_ptr(static_cast<size_t>(id));
  // Copy-on-write: a use count above one means a published view still
  // references this record; clone so its readers keep the old state.
  // With views disabled the count is always one and this is plain
  // access. (The clone's ast copy is atomic — see QueryRecord's copy
  // constructor.)
  if (slot.use_count() > 1) slot = std::make_shared<QueryRecord>(*slot);
  return slot.get();
}

const std::vector<QueryId>& QueryStore::QueriesUsingTable(
    const std::string& table) const {
  return postings_.UsingTable(table);
}

const std::vector<QueryId>& QueryStore::QueriesUsingTableSymbol(
    Symbol table) const {
  return postings_.UsingTableSymbol(table);
}

std::vector<QueryId> QueryStore::QueriesUsingAnyTable(
    const std::vector<std::string>& tables) const {
  return postings_.UsingAnyTable(tables);
}

std::vector<QueryId> QueryStore::QueriesUsingAnyTableSymbol(
    const std::vector<Symbol>& tables) const {
  return postings_.UsingAnyTableSymbol(tables);
}

const std::vector<QueryId>& QueryStore::QueriesUsingAttribute(
    const std::string& relation, const std::string& attribute) const {
  return postings_.UsingAttribute(relation, attribute);
}

const std::vector<QueryId>& QueryStore::QueriesUsingAttributeSymbol(
    Symbol qualified) const {
  return postings_.UsingAttributeSymbol(qualified);
}

const std::vector<QueryId>& QueryStore::QueriesByUser(const std::string& user) const {
  return postings_.ByUser(user);
}

const std::vector<QueryId>& QueryStore::QueriesWithKeyword(
    const std::string& word) const {
  return postings_.WithKeyword(word);
}

const std::vector<QueryId>& QueryStore::QueriesWithKeywordSymbol(
    Symbol token) const {
  return postings_.WithKeywordSymbol(token);
}

const std::vector<QueryId>& QueryStore::QueriesWithSkeleton(
    uint64_t skeleton_fp) const {
  return postings_.WithSkeleton(skeleton_fp);
}

std::vector<QueryId> QueryStore::LshCandidates(const MinHashSketch& sketch,
                                               size_t probe_bands) const {
  return lsh_.Candidates(sketch, probe_bands);
}

uint64_t QueryStore::PopularityOf(uint64_t fingerprint) const {
  return postings_.PopularityOf(fingerprint);
}

Status QueryStore::RewriteQueryText(QueryId id, const std::string& new_text) {
  QueryRecord* r = GetMutable(id);
  if (r == nullptr) return Status::NotFound("no query " + std::to_string(id));

  QueryRecord rebuilt = BuildRecordFromText(new_text, r->user, r->timestamp);
  if (rebuilt.parse_failed()) {
    return Status::ParseError("repaired text does not parse: " + rebuilt.stats.error);
  }
  // Purge index entries derived from the old text before replacing it,
  // so the record is never findable under features it no longer has.
  UnindexRecord(*r);
  uint32_t old_slot = scoring_.pop_slot(id);
  if (old_slot != ScoringColumns::kNoPopularitySlot) {
    scoring_.ReleaseSlotRef(old_slot);
  }
  r->text = std::move(rebuilt.text);
  r->canonical_text = std::move(rebuilt.canonical_text);
  r->skeleton = std::move(rebuilt.skeleton);
  r->fingerprint = rebuilt.fingerprint;
  r->skeleton_fingerprint = rebuilt.skeleton_fingerprint;
  r->components = std::move(rebuilt.components);
  r->ast = std::move(rebuilt.ast);
  r->text_parses = rebuilt.text_parses;
  // BuildRecordFromText already interned the new text's signature and
  // sketched it; only the preserved output summary's contribution needs
  // recomputing (output rows are not sketch elements, so the sketch
  // carries over as computed).
  r->signature = std::move(rebuilt.signature);
  r->sketch = rebuilt.sketch;
  UpdateOutputSignature(r);

  // Purge this query's feature rows and reinsert from the new AST —
  // unless a restore deferred the rows entirely, in which case the
  // eventual materialization reads the rewritten record anyway.
  if (!feature_rows_lazy_) {
    for (const char* table :
         {"Queries", "DataSources", "Attributes", "Predicates"}) {
      db::Table* t = feature_db_.GetMutableTable(table);
      if (t != nullptr) {
        t->RemoveRowsIf([&](const db::Row& row) {
          return !row.empty() && row[0].type() == db::ValueType::kInt &&
                 row[0].AsInt() == id;
        });
      }
    }
  }
  IndexRecord(*r);
  uint32_t slot = PopularitySlotFor(*r);
  if (slot != ScoringColumns::kNoPopularitySlot) scoring_.AddSlotRef(slot);
  scoring_.RewriteRecord(*r, slot);
  if (!feature_rows_lazy_) InsertFeatureRows(*r);
  for (StoreListener* l : listeners_) l->OnRewrite(id, r->text);
  MutationTick();
  return Status::Ok();
}

Status QueryStore::Annotate(QueryId id, Annotation annotation) {
  QueryRecord* r = GetMutable(id);
  if (r == nullptr) return Status::NotFound("no query " + std::to_string(id));
  r->annotations.push_back(std::move(annotation));
  for (StoreListener* l : listeners_) l->OnAnnotate(id, r->annotations.back());
  MutationTick();
  return Status::Ok();
}

// The scalar mutators below treat an unchanged value as a no-op and
// skip the listener (and the view-publication tick): maintenance
// recomputes quality (and re-flags drift) across the whole log every
// cycle, and without the guard each pass would frame thousands of
// do-nothing records into the WAL and trip the checkpoint thresholds
// on every run.

Status QueryStore::AddFlag(QueryId id, QueryFlags flag) {
  QueryRecord* r = GetMutable(id);
  if (r == nullptr) return Status::NotFound("no query " + std::to_string(id));
  if ((r->flags & flag) == static_cast<uint32_t>(flag)) return Status::Ok();
  r->flags |= flag;
  scoring_.SetFlags(id, r->flags);
  for (StoreListener* l : listeners_) l->OnFlagChange(id, flag, /*set=*/true);
  MutationTick();
  return Status::Ok();
}

Status QueryStore::ClearFlag(QueryId id, QueryFlags flag) {
  QueryRecord* r = GetMutable(id);
  if (r == nullptr) return Status::NotFound("no query " + std::to_string(id));
  if ((r->flags & flag) == 0) return Status::Ok();
  r->flags &= ~static_cast<uint32_t>(flag);
  scoring_.SetFlags(id, r->flags);
  for (StoreListener* l : listeners_) l->OnFlagChange(id, flag, /*set=*/false);
  MutationTick();
  return Status::Ok();
}

Status QueryStore::SetSession(QueryId id, SessionId session) {
  QueryRecord* r = GetMutable(id);
  if (r == nullptr) return Status::NotFound("no query " + std::to_string(id));
  if (r->session_id == session) return Status::Ok();
  r->session_id = session;
  for (StoreListener* l : listeners_) l->OnSetSession(id, session);
  MutationTick();
  return Status::Ok();
}

Status QueryStore::SetQuality(QueryId id, double quality) {
  QueryRecord* r = GetMutable(id);
  if (r == nullptr) return Status::NotFound("no query " + std::to_string(id));
  double clamped = std::clamp(quality, 0.0, 1.0);
  if (r->quality == clamped) return Status::Ok();
  r->quality = clamped;
  scoring_.SetQuality(id, r->quality);
  for (StoreListener* l : listeners_) l->OnSetQuality(id, r->quality);
  MutationTick();
  return Status::Ok();
}

Status QueryStore::SyncOutputSignature(QueryId id) {
  QueryRecord* r = GetMutable(id);
  if (r == nullptr) return Status::NotFound("no query " + std::to_string(id));
  UpdateOutputSignature(r);
  // A stats refresh usually re-executes to the same output; firing the
  // change feed for a no-op sync would needlessly invalidate the
  // miner's distance cache for exactly the popular, window-resident
  // records maintenance refreshes most often.
  if (scoring_.SyncOutput(*r)) {
    for (StoreListener* l : listeners_) l->OnSyncOutputSignature(id);
    MutationTick();
  }
  return Status::Ok();
}

Status QueryStore::RestoreOutputSignature(QueryId id,
                                          std::vector<uint64_t> output_rows,
                                          bool output_empty_computed) {
  QueryRecord* r = GetMutable(id);
  if (r == nullptr) return Status::NotFound("no query " + std::to_string(id));
  r->signature.output_rows = std::move(output_rows);
  r->signature.output_empty_computed = output_empty_computed;
  scoring_.SyncOutput(*r);
  MutationTick();
  return Status::Ok();
}

Status QueryStore::Delete(QueryId id, const std::string& requester, bool is_admin) {
  QueryRecord* r = GetMutable(id);
  if (r == nullptr) return Status::NotFound("no query " + std::to_string(id));
  if (!is_admin && r->user != requester) {
    return Status::PermissionDenied("only the owner or an admin may delete query " +
                                    std::to_string(id));
  }
  if (r->HasFlag(kFlagDeleted)) return Status::Ok();
  r->flags |= kFlagDeleted;
  scoring_.SetFlags(id, r->flags);
  for (StoreListener* l : listeners_) l->OnDelete(id);
  MutationTick();
  return Status::Ok();
}

bool QueryStore::Visible(const std::string& viewer, QueryId id) const {
  const QueryRecord* r = Get(id);
  if (r == nullptr || r->HasFlag(kFlagDeleted)) return false;
  return acl_.CanSee(viewer, r->user, id);
}

std::vector<QueryId> QueryStore::VisibleIds(const std::string& viewer) const {
  VisibilityCache& cache = CacheFor(viewer);
  std::vector<QueryId> out;
  out.reserve(records_.size());
  for (const QueryRecord& r : records_) {
    if (cache.Visible(r)) out.push_back(r.id);
  }
  return out;
}

VisibilityCache& QueryStore::CacheFor(const std::string& viewer) const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  auto key = std::make_pair(viewer, std::this_thread::get_id());
  std::unique_ptr<VisibilityCache>& slot = caches_[key];
  if (slot == nullptr) {
    slot = std::make_unique<VisibilityCache>(StoreView(*this), viewer);
  }
  return *slot;
}

// --- read-view publication -------------------------------------------------

void QueryStore::EnableViews(ViewOptions options) {
  view_options_ = options;
  if (!views_enabled_) {
    views_enabled_ = true;
    acl_view_tick_ = std::make_unique<AclViewTick>(this);
    acl_.AddListener(acl_view_tick_.get());
  }
  PublishView();
}

void QueryStore::MutationTick() {
  ++mutations_;
  if (!views_enabled_) return;
  ++unpublished_mutations_;
  if (publish_batch_depth_ > 0) return;
  if (unpublished_mutations_ >= view_options_.publish_every) PublishView();
}

void QueryStore::PublishView() {
  if (!views_enabled_) return;
  WallTimer publish_timer;
  // Copy-on-publish: the snapshot owns full copies of every index and
  // column the read path touches, so the writer may mutate the live
  // structures the moment the swap below completes. The records
  // themselves are shared by pointer (GetMutable clones on write).
  auto next = std::make_shared<ReadViewState>();
  next->sequence_ = ++view_sequence_;
  next->mutations_ = mutations_;
  next->max_timestamp_ = max_timestamp_;
  next->records_ = records_;
  next->postings_ = postings_;
  next->scoring_ = scoring_;
  next->lsh_ = lsh_;
  next->acl_ = acl_;  // the ACL copy strips listeners
  std::shared_ptr<const ReadViewState> old;
  {
    std::lock_guard<std::mutex> lock(view_owner_mu_);
    old = std::move(view_owner_);
    view_owner_ = next;
    // The publication point: readers pin an epoch slot, then load this.
    published_view_.store(next.get(), std::memory_order_seq_cst);
  }
  published_sequence_.store(next->sequence_, std::memory_order_relaxed);
  unpublished_mutations_ = 0;
  // The predecessor is unpublished; epoch reclamation destroys it once
  // no pinned reader can still be executing against it. SharedView
  // holders keep it alive beyond that via their own refcount.
  if (old != nullptr) view_epochs_.Retire(std::move(old));
  view_epochs_.Reclaim();
  static obs::Histogram* publish_micros =
      obs::MetricsRegistry::Global().GetHistogram("cqms_publish_micros");
  static obs::Counter* views_published =
      obs::MetricsRegistry::Global().GetCounter("cqms_views_published_total");
  static obs::Gauge* arena_garbage =
      obs::MetricsRegistry::Global().GetGauge("cqms_arena_garbage_bytes");
  publish_micros->Record(static_cast<uint64_t>(publish_timer.ElapsedMicros()));
  views_published->Increment();
  arena_garbage->Set(static_cast<int64_t>(scoring_.arena_garbage()));
}

PinnedView QueryStore::PinView() const {
  size_t slot = view_epochs_.Pin();
  const ReadViewState* view =
      published_view_.load(std::memory_order_seq_cst);
  if (view == nullptr) {
    // Views never enabled: nothing to pin against.
    view_epochs_.Unpin(slot);
    return PinnedView();
  }
  return PinnedView(&view_epochs_, slot, view);
}

std::shared_ptr<const ReadViewState> QueryStore::SharedView() const {
  std::lock_guard<std::mutex> lock(view_owner_mu_);
  return view_owner_;
}

}  // namespace cqms::storage
