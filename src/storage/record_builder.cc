#include "storage/record_builder.h"

#include "sql/canonical.h"
#include "sql/parser.h"

namespace cqms::storage {

QueryRecord BuildRecordFromText(std::string text, std::string user,
                                Micros timestamp) {
  QueryRecord record;
  record.text = std::move(text);
  record.user = std::move(user);
  record.timestamp = timestamp;

  auto parsed = sql::Parse(record.text);
  if (!parsed.ok()) {
    record.stats.succeeded = false;
    record.stats.error = parsed.status().ToString();
    return record;
  }
  std::shared_ptr<const sql::SelectStatement> ast = std::move(parsed).value();
  record.canonical_text = sql::CanonicalText(*ast);
  record.skeleton = sql::CanonicalSkeleton(*ast);
  record.fingerprint = sql::Fingerprint(*ast);
  record.skeleton_fingerprint = sql::SkeletonFingerprint(*ast);
  record.components = sql::CollectComponents(*ast);
  record.ast = std::move(ast);
  return record;
}

}  // namespace cqms::storage
