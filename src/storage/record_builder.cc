#include "storage/record_builder.h"

#include <algorithm>

#include "common/hash.h"
#include "common/interner.h"
#include "common/sorted_vector.h"
#include "common/string_util.h"
#include "sql/canonical.h"
#include "sql/parser.h"
#include "storage/minhash.h"

namespace cqms::storage {

namespace {

/// Id for a string in transient mode: the real interned id when the
/// string was ever logged, else a hash-derived id with the high bit set
/// (interner ids are dense from 0, so the ranges cannot collide while
/// fewer than 2^31 strings are interned).
Symbol TransientSymbol(const StringInterner& interner, std::string_view s) {
  Symbol known = interner.Find(s);
  if (known != kInvalidSymbol) return known;
  return 0x80000000u | static_cast<Symbol>(Fnv1a64(s) >> 33);
}

}  // namespace

void ComputeSimilaritySignature(QueryRecord* record, SignatureMode mode) {
  StringInterner& interner = GlobalInterner();
  auto sym = [&interner, mode](std::string_view s) {
    return mode == SignatureMode::kInterned ? interner.Intern(s)
                                            : TransientSymbol(interner, s);
  };
  SimilaritySignature sig;

  if (!record->parse_failed()) {
    const sql::QueryComponents& c = record->components;
    sig.tables.reserve(c.tables.size());
    for (const std::string& t : c.tables) sig.tables.push_back(sym(t));
    sig.predicate_skeletons.reserve(c.predicates.size());
    for (const auto& p : c.predicates) {
      sig.predicate_skeletons.push_back(sym(p.Skeleton()));
    }
    sig.attributes.reserve(c.attributes.size());
    for (const auto& [rel, attr] : c.attributes) {
      sig.attributes.push_back(sym(rel + "." + attr));
    }
    sig.projections.reserve(c.projections.size());
    for (const std::string& p : c.projections) {
      sig.projections.push_back(sym(p));
    }
    SortUnique(&sig.tables);
    SortUnique(&sig.predicate_skeletons);
    SortUnique(&sig.attributes);
    SortUnique(&sig.projections);
  }

  std::vector<std::string> words = ExtractWords(record->text);
  sig.text_tokens.reserve(words.size());
  for (const std::string& w : words) sig.text_tokens.push_back(sym(w));
  SortUnique(&sig.text_tokens);

  sig.valid = true;
  sig.transient = mode == SignatureMode::kTransient;
  record->signature = std::move(sig);
  record->sketch = ComputeMinHashSketch(record->signature);
  UpdateOutputSignature(record);
}

void UpdateOutputSignature(QueryRecord* record) {
  SimilaritySignature& sig = record->signature;
  const OutputSummary& summary = record->summary;
  sig.output_rows.clear();
  sig.output_rows.reserve(summary.sample_rows.size());
  for (const db::Row& r : summary.sample_rows) {
    sig.output_rows.push_back(Fnv1a64(db::RowToString(r)));
  }
  SortUnique(&sig.output_rows);
  sig.output_empty_computed = summary.sample_rows.empty() &&
                              summary.total_rows == 0 &&
                              !summary.column_names.empty();
}

QueryRecord BuildRecordFromText(std::string text, std::string user,
                                Micros timestamp, SignatureMode mode) {
  QueryRecord record;
  record.text = std::move(text);
  record.user = std::move(user);
  record.timestamp = timestamp;

  auto parsed = sql::Parse(record.text);
  if (!parsed.ok()) {
    record.stats.succeeded = false;
    record.stats.error = parsed.status().ToString();
    ComputeSimilaritySignature(&record, mode);
    return record;
  }
  std::shared_ptr<const sql::SelectStatement> ast = std::move(parsed).value();
  record.canonical_text = sql::CanonicalText(*ast);
  record.skeleton = sql::CanonicalSkeleton(*ast);
  record.fingerprint = sql::Fingerprint(*ast);
  record.skeleton_fingerprint = sql::SkeletonFingerprint(*ast);
  record.components = sql::CollectComponents(*ast);
  record.ast = std::move(ast);
  record.text_parses = true;
  ComputeSimilaritySignature(&record, mode);
  return record;
}

}  // namespace cqms::storage
