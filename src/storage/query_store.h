#ifndef CQMS_STORAGE_QUERY_STORE_H_
#define CQMS_STORAGE_QUERY_STORE_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/interner.h"
#include "common/result.h"
#include "db/database.h"
#include "storage/access_control.h"
#include "storage/epoch.h"
#include "storage/lsh_index.h"
#include "storage/query_record.h"
#include "storage/read_view.h"
#include "storage/record_log.h"
#include "storage/scoring_columns.h"
#include "storage/store_listener.h"

namespace cqms::storage {

/// Knobs of the epoch-published read-view pipeline
/// (QueryStore::EnableViews; docs/concurrency.md).
struct ViewOptions {
  /// Publish a fresh view after every N applied mutations. 1 = every
  /// mutation becomes immediately visible to new readers; larger values
  /// amortize the O(log size) snapshot copy across a write burst at the
  /// cost of readers lagging up to N-1 mutations. Background cycles
  /// additionally batch to one publish per cycle via ScopedPublishBatch
  /// regardless of this setting.
  size_t publish_every = 1;
};

/// The CQMS Query Storage (Figure 4): an append-only log of profiled
/// queries with secondary indexes, plus the Figure-1 feature relations
/// materialized as tables of an embedded `db::Database` so that SQL
/// meta-queries run against them directly.
///
/// Feature relations (names as in the paper):
///   Queries(qid, qtext, usr, ts, exec_micros, result_rows, succeeded)
///   DataSources(qid, relname)
///   Attributes(qid, attrname, relname)
///   Predicates(qid, attrname, relname, op, const_val)
///
/// Thread model (docs/concurrency.md): the store itself is
/// single-writer — all mutators run on one thread. Concurrent readers
/// never touch the live structures; they execute against immutable
/// published ReadViewState snapshots instead, acquired lock-free via
/// PinView() after EnableViews() and retired through epoch-based
/// reclamation. With views disabled (the default) nothing is published
/// and the store behaves exactly as the single-threaded original.
class QueryStore {
 public:
  /// `lsh_params` sets the MinHash/LSH banding (recall/cost knob) of the
  /// sketch index; the default targets high recall at moderate Jaccard
  /// (see LshParams).
  explicit QueryStore(LshParams lsh_params = {});

  // Not copyable: indexes hold ids into the record log.
  QueryStore(const QueryStore&) = delete;
  QueryStore& operator=(const QueryStore&) = delete;

  /// Appends a record, assigning its id, finalizing its similarity
  /// signature (the output summary is attached by the profiler after
  /// BuildRecordFromText, so the signature is recomputed here) and
  /// updating every index, the scoring columns and the feature
  /// relations. Returns the id.
  QueryId Append(QueryRecord record);

  /// Pre-sizes the secondary-index hash tables, the LSH buckets and the
  /// scoring columns for a bulk restore of `records` records referencing
  /// `symbols` distinct signature Symbols — incremental rehashing while
  /// a snapshot streams in costs a measurable slice of cold-start.
  void ReserveForRestore(size_t records, size_t symbols);

  /// Bulk-restore entry for the binary snapshot loader: appends a fully
  /// materialized record — signature, sketch, fingerprints, components
  /// all trusted exactly as stored — rebuilding only the indexes and
  /// the scoring columns (feature relations defer; see feature_db()).
  /// Never tokenizes, parses or sketches, and never notifies the
  /// listener (a restore is not a new mutation); the only interner
  /// touch is resolving the owner name for the scoring columns.
  /// Callers are responsible for the record being internally
  /// consistent (LoadSnapshot's CRC framing).
  QueryId RestoreAppend(QueryRecord record);

  /// Registers a mutation observer (the write-ahead log, the miner's
  /// ChangeTracker). One registration covers the store and its
  /// AccessControl. Listeners fire after each successful durable
  /// mutation, in registration order — see StoreListener. Registering
  /// the same listener twice is a no-op.
  void AddListener(StoreListener* listener);

  /// Detaches a previously registered listener (no-op when absent).
  void RemoveListener(StoreListener* listener);

  const QueryRecord* Get(QueryId id) const;
  /// Writer-side mutable access. When read views are enabled and a
  /// published view still shares the record, it is cloned first
  /// (copy-on-write) so readers of the old view keep an unchanged
  /// record; with views disabled this is plain access, no copies.
  QueryRecord* GetMutable(QueryId id);
  size_t size() const { return records_.size(); }
  const RecordLog& records() const { return records_; }

  /// Largest timestamp ever appended (0 when empty). Maintained by
  /// Append so ranking paths (kNN recency boost) need no log scan.
  Micros max_timestamp() const { return max_timestamp_; }

  // --- secondary indexes ---------------------------------------------------
  // Table and attribute posting lists are keyed by the interned Symbol of
  // the (lower-case) table / "rel.attr" name — the same ids the similarity
  // signatures carry — so index maintenance reuses the signature's
  // interning work and the meta-query planner intersects posting lists
  // without hashing a single string.

  /// Ids of queries whose FROM (at any nesting level) references `table`.
  const std::vector<QueryId>& QueriesUsingTable(const std::string& table) const;

  /// Symbol-keyed variant: `table` is the interned lower-case table name
  /// (e.g. a probe signature's tables entry). Unknown symbols — including
  /// hash-derived transient ids — return the empty list.
  const std::vector<QueryId>& QueriesUsingTableSymbol(Symbol table) const;

  /// Sorted, deduplicated union of QueriesUsingTable over `tables` —
  /// kNN candidate generation. Concatenates the posting lists into one
  /// flat vector and sort+uniques it (no per-id node allocations, unlike
  /// a std::set union).
  std::vector<QueryId> QueriesUsingAnyTable(
      const std::vector<std::string>& tables) const;

  /// Symbol-keyed union, for probes that carry an interned signature.
  std::vector<QueryId> QueriesUsingAnyTableSymbol(
      const std::vector<Symbol>& tables) const;

  /// Ids of queries referencing relation.attribute.
  const std::vector<QueryId>& QueriesUsingAttribute(const std::string& relation,
                                                    const std::string& attribute) const;

  /// Symbol-keyed variant: `qualified` is the interned "rel.attr" string.
  const std::vector<QueryId>& QueriesUsingAttributeSymbol(Symbol qualified) const;

  const std::vector<QueryId>& QueriesByUser(const std::string& user) const;

  /// Ids of queries whose text contains `word` (lower-cased token).
  const std::vector<QueryId>& QueriesWithKeyword(const std::string& word) const;

  /// Symbol-keyed variant for callers that already resolved the token.
  const std::vector<QueryId>& QueriesWithKeywordSymbol(Symbol token) const;

  /// Ids sharing a structure skeleton (same query modulo constants).
  const std::vector<QueryId>& QueriesWithSkeleton(uint64_t skeleton_fp) const;

  /// Sorted ids whose MinHash sketch shares at least one LSH band
  /// bucket with `sketch` — the sub-linear kNN candidate set.
  /// `probe_bands` limits the lookup to the first N bands (0 = all).
  std::vector<QueryId> LshCandidates(const MinHashSketch& sketch,
                                     size_t probe_bands = 0) const;

  /// The sketch index itself (band/row introspection, lifecycle tests).
  const LshIndex& lsh() const { return lsh_; }

  /// How many logged queries share this exact canonical fingerprint —
  /// the popularity count used by ranking functions.
  uint64_t PopularityOf(uint64_t fingerprint) const;

  /// Columnar copies of the hot scoring fields (flags, quality,
  /// timestamp, owner, popularity slot, packed signature spans, lowered
  /// text), maintained through every mutation path. The meta-query
  /// scoring loop reads candidates from here instead of the record deque.
  const ScoringColumns& scoring() const { return scoring_; }

  /// Rebuilds the scoring-column arenas, dropping the garbage orphaned
  /// by rewrites and output refreshes; returns bytes reclaimed. Spans
  /// and string_views previously handed out by scoring() are
  /// invalidated (like a rehash). Maintenance invokes this when
  /// arena_garbage() crosses its threshold.
  size_t CompactScoringArenas() { return scoring_.Compact(); }

  // --- record mutation -------------------------------------------------------

  Status Annotate(QueryId id, Annotation annotation);

  /// Rewrites the SQL text of an existing record (used by automatic
  /// query repair after schema evolution, §4.4). Parse-derived fields,
  /// the similarity signature and feature-relation rows are rebuilt;
  /// user, timestamp, stats, output summary, session and annotations are
  /// preserved. Stale secondary-index entries (old tables, attributes,
  /// keywords, skeleton, fingerprint) are purged, so index lookups never
  /// return the record under features it no longer has.
  Status RewriteQueryText(QueryId id, const std::string& new_text);
  Status AddFlag(QueryId id, QueryFlags flag);
  Status ClearFlag(QueryId id, QueryFlags flag);
  Status SetSession(QueryId id, SessionId session);
  Status SetQuality(QueryId id, double quality);

  /// Recomputes the output-derived signature fields of `id` from its
  /// current summary and mirrors them into the scoring columns. Callers
  /// that replace a record's output summary in place (maintenance stats
  /// refresh) must use this instead of calling UpdateOutputSignature on
  /// the record directly, or the columnar copy goes stale.
  Status SyncOutputSignature(QueryId id);

  /// Restore-grade variant for WAL replay: sets the output-derived
  /// signature fields directly — the summary they were computed from is
  /// not persisted — and mirrors them into the scoring columns. Never
  /// notifies the listener.
  Status RestoreOutputSignature(QueryId id, std::vector<uint64_t> output_rows,
                                bool output_empty_computed);

  /// Tombstones a query (owner or admin action, §2.4). The record stays
  /// for audit but disappears from all visible scans.
  Status Delete(QueryId id, const std::string& requester, bool is_admin = false);

  // --- visibility ----------------------------------------------------------------

  AccessControl& acl() { return acl_; }
  const AccessControl& acl() const { return acl_; }

  /// True when `viewer` may see query `id` (not deleted, ACL passes).
  bool Visible(const std::string& viewer, QueryId id) const;

  /// All ids visible to `viewer`, in log order.
  std::vector<QueryId> VisibleIds(const std::string& viewer) const;

  /// The memoizing visibility cache for `viewer` on the calling thread
  /// — the live-path counterpart of ReadViewState::CacheFor, so
  /// repeated reads (MetaQueryExecutor with views disabled) keep their
  /// ACL decisions warm across calls instead of re-deriving them per
  /// query. Pooled per (viewer, thread); entries self-invalidate on ACL
  /// epoch change, so mutations between reads are safe. The mutex
  /// guards only the pool lookup.
  VisibilityCache& CacheFor(const std::string& viewer) const;

  // --- concurrent read views (docs/concurrency.md) -------------------------

  /// Turns on the epoch-published read-view pipeline and publishes the
  /// first view immediately. From here on, every applied mutation ticks
  /// the publication counter and (subject to `options.publish_every`
  /// and any active ScopedPublishBatch) republishes a fresh immutable
  /// snapshot for readers. Calling again just applies the new options
  /// and republishes. Single-writer: call from the writer thread.
  void EnableViews(ViewOptions options = {});

  bool views_enabled() const { return views_enabled_; }

  /// Forces a publish of the current state now (writer thread only;
  /// no-op until EnableViews).
  void PublishView();

  /// Lock-free reader entry point: pins the current published view for
  /// the handle's lifetime. Scope it to one meta-query execution — a
  /// held pin blocks reclamation of every view retired after it. Null
  /// handle iff views were never enabled. Safe from any thread.
  PinnedView PinView() const;

  /// Refcounted handle on the current published view, for long-lived
  /// consumers (checkpoint backups, mining cycles): keeps exactly this
  /// view alive without blocking epoch reclamation of later ones. Null
  /// iff views were never enabled. Safe from any thread.
  std::shared_ptr<const ReadViewState> SharedView() const;

  /// Sequence number of the latest published view (0 = none yet).
  /// Safe from any thread.
  uint64_t published_sequence() const {
    return published_sequence_.load(std::memory_order_relaxed);
  }

  /// Total mutations applied (appends, rewrites, flags, ACL changes...);
  /// the prefix-consistency stamp carried by each published view.
  uint64_t mutation_count() const { return mutations_; }

  /// Defers view publication for its scope (nestable): background
  /// cycles that apply hundreds of small mutations wrap themselves in
  /// one of these so readers see a single atomic republish at the end
  /// instead of paying one O(log size) snapshot copy per mutation.
  class ScopedPublishBatch {
   public:
    explicit ScopedPublishBatch(QueryStore* store) : store_(store) {
      ++store_->publish_batch_depth_;
    }
    ~ScopedPublishBatch() {
      if (--store_->publish_batch_depth_ == 0 && store_->views_enabled_ &&
          store_->unpublished_mutations_ > 0) {
        store_->PublishView();
      }
    }
    ScopedPublishBatch(const ScopedPublishBatch&) = delete;
    ScopedPublishBatch& operator=(const ScopedPublishBatch&) = delete;

   private:
    QueryStore* store_;
  };

  // --- feature relations -----------------------------------------------------------

  /// The embedded database holding the feature relations; execute SQL
  /// meta-queries against it (Figure 1). After a bulk snapshot restore
  /// the rows are materialized lazily on first access (cold-start pays
  /// for the SQL meta-query surface only when it is used); live appends
  /// always maintain them incrementally once materialized.
  const db::Database& feature_db() const {
    if (feature_rows_lazy_) MaterializeFeatureRows();
    return feature_db_;
  }

 private:
  /// StoreView's live-store facade points straight at postings_.
  friend class StoreView;

  /// Internal StoreListener registered on acl_ by EnableViews so ACL
  /// mutations (AddUser, SetVisibility) tick the publication counter
  /// like record mutations do.
  class AclViewTick;

  /// Shared tail of Append / RestoreAppend: assigns the id, stores the
  /// record and rebuilds every derived structure from it.
  QueryId FinishAppend(QueryRecord record);
  /// Bumps the mutation counter and, when views are enabled and no
  /// ScopedPublishBatch is active, republishes once publish_every
  /// unpublished mutations have accumulated. Called at the end of every
  /// successful state-changing mutation.
  void MutationTick();
  void IndexRecord(const QueryRecord& record);
  /// Removes `record.id` from every feature-derived index (tables,
  /// attributes, keywords, skeleton, fingerprint) using the record's
  /// *current* features; called before RewriteQueryText replaces them.
  void UnindexRecord(const QueryRecord& record);
  void InsertFeatureRows(const QueryRecord& record) const;
  /// Rebuilds every feature-relation row from the current records —
  /// the deferred half of a bulk restore.
  void MaterializeFeatureRows() const;
  /// Slot of `fingerprint` in the scoring columns' popularity counts,
  /// creating one on first sight. kNoPopularitySlot for parse failures.
  uint32_t PopularitySlotFor(const QueryRecord& record);

  RecordLog records_;
  AccessControl acl_;
  /// Mutable alongside feature_rows_lazy_: the const feature_db()
  /// accessor materializes deferred rows on first use.
  mutable db::Database feature_db_;
  mutable bool feature_rows_lazy_ = false;
  /// The four feature relations, resolved once at construction —
  /// InsertFeatureRows appends ~a dozen rows per logged query, and the
  /// per-insert name lowering + catalog lookup showed up in the
  /// snapshot-restore profile.
  db::Table* queries_table_ = nullptr;
  db::Table* datasources_table_ = nullptr;
  db::Table* attributes_table_ = nullptr;
  db::Table* predicates_table_ = nullptr;
  Micros max_timestamp_ = 0;

  /// The six feature posting lists, as the copyable value a view
  /// publication snapshots wholesale (see PostingIndex for keying).
  PostingIndex postings_;
  std::unordered_map<uint64_t, uint32_t> pop_slot_of_;
  LshIndex lsh_;
  ScoringColumns scoring_;
  /// Registration-ordered; tiny (the WAL plus the miner's tracker), so
  /// a vector scan beats any indexed structure.
  std::vector<StoreListener*> listeners_;
  std::vector<QueryId> empty_;

  /// Live-path visibility-cache pool (CacheFor), keyed like
  /// ReadViewState::caches_.
  mutable std::mutex cache_mu_;
  mutable std::map<std::pair<std::string, std::thread::id>,
                   std::unique_ptr<VisibilityCache>>
      caches_;

  // --- read-view publication state (writer-side unless noted) ------------
  bool views_enabled_ = false;
  ViewOptions view_options_;
  /// Total successful mutations (records + ACL); stamped into views.
  uint64_t mutations_ = 0;
  uint64_t unpublished_mutations_ = 0;
  int publish_batch_depth_ = 0;
  uint64_t view_sequence_ = 0;
  std::unique_ptr<StoreListener> acl_view_tick_;
  /// Reader-shared: the reclamation domain readers pin through the
  /// const PinView(), hence mutable.
  mutable EpochDomain view_epochs_;
  /// Guards view_owner_ (the publish swap vs SharedView copies).
  mutable std::mutex view_owner_mu_;
  /// Owning reference keeping the current published view alive.
  std::shared_ptr<const ReadViewState> view_owner_;
  /// The lock-free publication point readers load after pinning.
  std::atomic<const ReadViewState*> published_view_{nullptr};
  std::atomic<uint64_t> published_sequence_{0};
};

// StoreView members that need the complete QueryStore (declared in
// read_view.h). VisibilityCache — formerly defined here — moved to
// read_view.h so it can serve frozen views and the live store alike.

inline StoreView::StoreView(const QueryStore& store)
    : store_(&store),
      postings_(&store.postings_),
      scoring_(&store.scoring()),
      lsh_(&store.lsh()),
      acl_(&store.acl()) {}

inline const QueryRecord* StoreView::Get(QueryId id) const {
  return view_ != nullptr ? view_->Get(id) : store_->Get(id);
}

inline size_t StoreView::size() const {
  return view_ != nullptr ? view_->size() : store_->size();
}

inline Micros StoreView::max_timestamp() const {
  return view_ != nullptr ? view_->max_timestamp() : store_->max_timestamp();
}

}  // namespace cqms::storage

#endif  // CQMS_STORAGE_QUERY_STORE_H_
