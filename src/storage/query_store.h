#ifndef CQMS_STORAGE_QUERY_STORE_H_
#define CQMS_STORAGE_QUERY_STORE_H_

#include <deque>
#include <map>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/interner.h"
#include "common/result.h"
#include "db/database.h"
#include "storage/access_control.h"
#include "storage/lsh_index.h"
#include "storage/query_record.h"
#include "storage/scoring_columns.h"
#include "storage/store_listener.h"

namespace cqms::storage {

/// The CQMS Query Storage (Figure 4): an append-only log of profiled
/// queries with secondary indexes, plus the Figure-1 feature relations
/// materialized as tables of an embedded `db::Database` so that SQL
/// meta-queries run against them directly.
///
/// Feature relations (names as in the paper):
///   Queries(qid, qtext, usr, ts, exec_micros, result_rows, succeeded)
///   DataSources(qid, relname)
///   Attributes(qid, attrname, relname)
///   Predicates(qid, attrname, relname, op, const_val)
class QueryStore {
 public:
  /// `lsh_params` sets the MinHash/LSH banding (recall/cost knob) of the
  /// sketch index; the default targets high recall at moderate Jaccard
  /// (see LshParams).
  explicit QueryStore(LshParams lsh_params = {});

  // Not copyable: indexes hold ids into the record log.
  QueryStore(const QueryStore&) = delete;
  QueryStore& operator=(const QueryStore&) = delete;

  /// Appends a record, assigning its id, finalizing its similarity
  /// signature (the output summary is attached by the profiler after
  /// BuildRecordFromText, so the signature is recomputed here) and
  /// updating every index, the scoring columns and the feature
  /// relations. Returns the id.
  QueryId Append(QueryRecord record);

  /// Pre-sizes the secondary-index hash tables, the LSH buckets and the
  /// scoring columns for a bulk restore of `records` records referencing
  /// `symbols` distinct signature Symbols — incremental rehashing while
  /// a snapshot streams in costs a measurable slice of cold-start.
  void ReserveForRestore(size_t records, size_t symbols);

  /// Bulk-restore entry for the binary snapshot loader: appends a fully
  /// materialized record — signature, sketch, fingerprints, components
  /// all trusted exactly as stored — rebuilding only the indexes and
  /// the scoring columns (feature relations defer; see feature_db()).
  /// Never tokenizes, parses or sketches, and never notifies the
  /// listener (a restore is not a new mutation); the only interner
  /// touch is resolving the owner name for the scoring columns.
  /// Callers are responsible for the record being internally
  /// consistent (LoadSnapshot's CRC framing).
  QueryId RestoreAppend(QueryRecord record);

  /// Registers a mutation observer (the write-ahead log, the miner's
  /// ChangeTracker). One registration covers the store and its
  /// AccessControl. Listeners fire after each successful durable
  /// mutation, in registration order — see StoreListener. Registering
  /// the same listener twice is a no-op.
  void AddListener(StoreListener* listener);

  /// Detaches a previously registered listener (no-op when absent).
  void RemoveListener(StoreListener* listener);

  const QueryRecord* Get(QueryId id) const;
  QueryRecord* GetMutable(QueryId id);
  size_t size() const { return records_.size(); }
  const std::deque<QueryRecord>& records() const { return records_; }

  /// Largest timestamp ever appended (0 when empty). Maintained by
  /// Append so ranking paths (kNN recency boost) need no log scan.
  Micros max_timestamp() const { return max_timestamp_; }

  // --- secondary indexes ---------------------------------------------------
  // Table and attribute posting lists are keyed by the interned Symbol of
  // the (lower-case) table / "rel.attr" name — the same ids the similarity
  // signatures carry — so index maintenance reuses the signature's
  // interning work and the meta-query planner intersects posting lists
  // without hashing a single string.

  /// Ids of queries whose FROM (at any nesting level) references `table`.
  const std::vector<QueryId>& QueriesUsingTable(const std::string& table) const;

  /// Symbol-keyed variant: `table` is the interned lower-case table name
  /// (e.g. a probe signature's tables entry). Unknown symbols — including
  /// hash-derived transient ids — return the empty list.
  const std::vector<QueryId>& QueriesUsingTableSymbol(Symbol table) const;

  /// Sorted, deduplicated union of QueriesUsingTable over `tables` —
  /// kNN candidate generation. Concatenates the posting lists into one
  /// flat vector and sort+uniques it (no per-id node allocations, unlike
  /// a std::set union).
  std::vector<QueryId> QueriesUsingAnyTable(
      const std::vector<std::string>& tables) const;

  /// Symbol-keyed union, for probes that carry an interned signature.
  std::vector<QueryId> QueriesUsingAnyTableSymbol(
      const std::vector<Symbol>& tables) const;

  /// Ids of queries referencing relation.attribute.
  const std::vector<QueryId>& QueriesUsingAttribute(const std::string& relation,
                                                    const std::string& attribute) const;

  /// Symbol-keyed variant: `qualified` is the interned "rel.attr" string.
  const std::vector<QueryId>& QueriesUsingAttributeSymbol(Symbol qualified) const;

  const std::vector<QueryId>& QueriesByUser(const std::string& user) const;

  /// Ids of queries whose text contains `word` (lower-cased token).
  const std::vector<QueryId>& QueriesWithKeyword(const std::string& word) const;

  /// Symbol-keyed variant for callers that already resolved the token.
  const std::vector<QueryId>& QueriesWithKeywordSymbol(Symbol token) const;

  /// Ids sharing a structure skeleton (same query modulo constants).
  const std::vector<QueryId>& QueriesWithSkeleton(uint64_t skeleton_fp) const;

  /// Sorted ids whose MinHash sketch shares at least one LSH band
  /// bucket with `sketch` — the sub-linear kNN candidate set.
  /// `probe_bands` limits the lookup to the first N bands (0 = all).
  std::vector<QueryId> LshCandidates(const MinHashSketch& sketch,
                                     size_t probe_bands = 0) const;

  /// The sketch index itself (band/row introspection, lifecycle tests).
  const LshIndex& lsh() const { return lsh_; }

  /// How many logged queries share this exact canonical fingerprint —
  /// the popularity count used by ranking functions.
  uint64_t PopularityOf(uint64_t fingerprint) const;

  /// Columnar copies of the hot scoring fields (flags, quality,
  /// timestamp, owner, popularity slot, packed signature spans, lowered
  /// text), maintained through every mutation path. The meta-query
  /// scoring loop reads candidates from here instead of the record deque.
  const ScoringColumns& scoring() const { return scoring_; }

  /// Rebuilds the scoring-column arenas, dropping the garbage orphaned
  /// by rewrites and output refreshes; returns bytes reclaimed. Spans
  /// and string_views previously handed out by scoring() are
  /// invalidated (like a rehash). Maintenance invokes this when
  /// arena_garbage() crosses its threshold.
  size_t CompactScoringArenas() { return scoring_.Compact(); }

  // --- record mutation -------------------------------------------------------

  Status Annotate(QueryId id, Annotation annotation);

  /// Rewrites the SQL text of an existing record (used by automatic
  /// query repair after schema evolution, §4.4). Parse-derived fields,
  /// the similarity signature and feature-relation rows are rebuilt;
  /// user, timestamp, stats, output summary, session and annotations are
  /// preserved. Stale secondary-index entries (old tables, attributes,
  /// keywords, skeleton, fingerprint) are purged, so index lookups never
  /// return the record under features it no longer has.
  Status RewriteQueryText(QueryId id, const std::string& new_text);
  Status AddFlag(QueryId id, QueryFlags flag);
  Status ClearFlag(QueryId id, QueryFlags flag);
  Status SetSession(QueryId id, SessionId session);
  Status SetQuality(QueryId id, double quality);

  /// Recomputes the output-derived signature fields of `id` from its
  /// current summary and mirrors them into the scoring columns. Callers
  /// that replace a record's output summary in place (maintenance stats
  /// refresh) must use this instead of calling UpdateOutputSignature on
  /// the record directly, or the columnar copy goes stale.
  Status SyncOutputSignature(QueryId id);

  /// Restore-grade variant for WAL replay: sets the output-derived
  /// signature fields directly — the summary they were computed from is
  /// not persisted — and mirrors them into the scoring columns. Never
  /// notifies the listener.
  Status RestoreOutputSignature(QueryId id, std::vector<uint64_t> output_rows,
                                bool output_empty_computed);

  /// Tombstones a query (owner or admin action, §2.4). The record stays
  /// for audit but disappears from all visible scans.
  Status Delete(QueryId id, const std::string& requester, bool is_admin = false);

  // --- visibility ----------------------------------------------------------------

  AccessControl& acl() { return acl_; }
  const AccessControl& acl() const { return acl_; }

  /// True when `viewer` may see query `id` (not deleted, ACL passes).
  bool Visible(const std::string& viewer, QueryId id) const;

  /// All ids visible to `viewer`, in log order.
  std::vector<QueryId> VisibleIds(const std::string& viewer) const;

  // --- feature relations -----------------------------------------------------------

  /// The embedded database holding the feature relations; execute SQL
  /// meta-queries against it (Figure 1). After a bulk snapshot restore
  /// the rows are materialized lazily on first access (cold-start pays
  /// for the SQL meta-query surface only when it is used); live appends
  /// always maintain them incrementally once materialized.
  const db::Database& feature_db() const {
    if (feature_rows_lazy_) MaterializeFeatureRows();
    return feature_db_;
  }

 private:
  /// Shared tail of Append / RestoreAppend: assigns the id, stores the
  /// record and rebuilds every derived structure from it.
  QueryId FinishAppend(QueryRecord record);
  void IndexRecord(const QueryRecord& record);
  /// Removes `record.id` from every feature-derived index (tables,
  /// attributes, keywords, skeleton, fingerprint) using the record's
  /// *current* features; called before RewriteQueryText replaces them.
  void UnindexRecord(const QueryRecord& record);
  void InsertFeatureRows(const QueryRecord& record) const;
  /// Rebuilds every feature-relation row from the current records —
  /// the deferred half of a bulk restore.
  void MaterializeFeatureRows() const;
  /// Slot of `fingerprint` in the scoring columns' popularity counts,
  /// creating one on first sight. kNoPopularitySlot for parse failures.
  uint32_t PopularitySlotFor(const QueryRecord& record);

  std::deque<QueryRecord> records_;
  AccessControl acl_;
  /// Mutable alongside feature_rows_lazy_: the const feature_db()
  /// accessor materializes deferred rows on first use.
  mutable db::Database feature_db_;
  mutable bool feature_rows_lazy_ = false;
  /// The four feature relations, resolved once at construction —
  /// InsertFeatureRows appends ~a dozen rows per logged query, and the
  /// per-insert name lowering + catalog lookup showed up in the
  /// snapshot-restore profile.
  db::Table* queries_table_ = nullptr;
  db::Table* datasources_table_ = nullptr;
  db::Table* attributes_table_ = nullptr;
  db::Table* predicates_table_ = nullptr;
  Micros max_timestamp_ = 0;

  /// Keyed by the interned lower-case table name — the same Symbols as
  /// signature.tables.
  std::unordered_map<Symbol, std::vector<QueryId>> by_table_;
  /// Keyed by the interned "rel.attr" string — same as signature.attributes.
  std::unordered_map<Symbol, std::vector<QueryId>> by_attribute_;
  std::unordered_map<std::string, std::vector<QueryId>> by_user_;
  /// Keyed by interned token Symbol (GlobalInterner); tokens come from
  /// the record's signature, so indexing shares the interning work.
  std::unordered_map<Symbol, std::vector<QueryId>> by_keyword_;
  std::unordered_map<uint64_t, std::vector<QueryId>> by_skeleton_;
  std::unordered_map<uint64_t, std::vector<QueryId>> by_fingerprint_;
  std::unordered_map<uint64_t, uint32_t> pop_slot_of_;
  LshIndex lsh_;
  ScoringColumns scoring_;
  /// Registration-ordered; tiny (the WAL plus the miner's tracker), so
  /// a vector scan beats any indexed structure.
  std::vector<StoreListener*> listeners_;
  std::vector<QueryId> empty_;
};

/// Memoizes visibility decisions for one viewer over one store. The
/// ACL part of a visibility check — per-query visibility level plus the
/// group-set intersection for kGroup queries — is resolved at most once
/// per query id and cached in a flat byte vector; the deleted-tombstone
/// flag is re-read from the scoring columns on every call so deletions
/// take effect immediately. Safe to keep alive across searches and ACL
/// mutations: every call compares the store's ACL epoch against the
/// snapshot taken when the cache was (re)filled and drops all memoized
/// decisions on mismatch, so a viewer whose group membership changed is
/// re-checked from scratch. Semantics match QueryStore::Visible exactly.
class VisibilityCache {
 public:
  VisibilityCache(const QueryStore* store, std::string viewer)
      : store_(store), viewer_(std::move(viewer)) {}

  /// True when the viewer may see `record` (not deleted, ACL passes).
  bool Visible(const QueryRecord& record) const {
    if (record.HasFlag(kFlagDeleted)) return false;
    return AclVisible(record.id);
  }

  /// Columnar variant: reads the tombstone flag from the scoring columns
  /// instead of the record struct — the scoring-loop fast path.
  bool VisibleId(QueryId id) const {
    if ((store_->scoring().flags(id) & kFlagDeleted) != 0) return false;
    return AclVisible(id);
  }

  const std::string& viewer() const { return viewer_; }

 private:
  bool AclVisible(QueryId id) const;

  static constexpr uint8_t kUnknown = 0, kVisible = 1, kHidden = 2;

  const QueryStore* store_;
  std::string viewer_;
  /// ACL epoch the memoized entries were computed under.
  mutable uint64_t acl_epoch_ = ~0ULL;
  /// The viewer's interned Symbol (kInvalidSymbol when the viewer never
  /// authored a logged query) — lets the owner check compare one u32
  /// against the columns' owner Symbol instead of touching the record
  /// deque for a string compare. Refreshed whenever acl_ok_ grows, which
  /// covers the viewer's name being interned by their own first Append.
  mutable Symbol viewer_symbol_ = kInvalidSymbol;
  /// Per-id ACL decision (kUnknown / kVisible / kHidden); excludes the
  /// deleted flag, which is never cached.
  mutable std::vector<uint8_t> acl_ok_;
  /// Per-owner group-sharing results, shared across that owner's
  /// queries; keyed by the owner's interned Symbol.
  mutable std::unordered_map<Symbol, bool> shares_group_;
};

}  // namespace cqms::storage

#endif  // CQMS_STORAGE_QUERY_STORE_H_
