#ifndef CQMS_STORAGE_RECORD_LOG_H_
#define CQMS_STORAGE_RECORD_LOG_H_

#include <cstddef>
#include <deque>
#include <iterator>
#include <memory>

#include "storage/query_record.h"

namespace cqms::storage {

/// The QueryStore's record log: an append-only sequence of records held
/// through shared_ptr so published read views can reference a record
/// without copying it. Iteration and indexing dereference transparently
/// — `for (const QueryRecord& r : store.records())` reads exactly as it
/// did when the log was a plain deque.
///
/// The shared_ptr indirection is what makes record-level copy-on-write
/// possible: when a mutation targets a record that a published view
/// still references (use_count > 1), QueryStore::GetMutable clones it
/// and swaps the pointer, so readers of the old view keep an unchanged
/// record while the log moves on. The deque never invalidates existing
/// elements on push_back, so writer-side references obtained between
/// mutations stay valid.
class RecordLog {
 public:
  /// Random-access iterator dereferencing to `const QueryRecord&`.
  class const_iterator {
   public:
    using iterator_category = std::random_access_iterator_tag;
    using value_type = QueryRecord;
    using difference_type = std::ptrdiff_t;
    using pointer = const QueryRecord*;
    using reference = const QueryRecord&;

    const_iterator() = default;
    explicit const_iterator(
        std::deque<std::shared_ptr<QueryRecord>>::const_iterator it)
        : it_(it) {}

    reference operator*() const { return **it_; }
    pointer operator->() const { return it_->get(); }
    reference operator[](difference_type n) const { return *it_[n]; }

    const_iterator& operator++() { ++it_; return *this; }
    const_iterator operator++(int) { const_iterator t = *this; ++it_; return t; }
    const_iterator& operator--() { --it_; return *this; }
    const_iterator operator--(int) { const_iterator t = *this; --it_; return t; }
    const_iterator& operator+=(difference_type n) { it_ += n; return *this; }
    const_iterator& operator-=(difference_type n) { it_ -= n; return *this; }
    friend const_iterator operator+(const_iterator a, difference_type n) {
      return const_iterator(a.it_ + n);
    }
    friend const_iterator operator+(difference_type n, const_iterator a) {
      return const_iterator(a.it_ + n);
    }
    friend const_iterator operator-(const_iterator a, difference_type n) {
      return const_iterator(a.it_ - n);
    }
    friend difference_type operator-(const_iterator a, const_iterator b) {
      return a.it_ - b.it_;
    }
    friend bool operator==(const_iterator a, const_iterator b) { return a.it_ == b.it_; }
    friend bool operator!=(const_iterator a, const_iterator b) { return a.it_ != b.it_; }
    friend bool operator<(const_iterator a, const_iterator b) { return a.it_ < b.it_; }
    friend bool operator>(const_iterator a, const_iterator b) { return a.it_ > b.it_; }
    friend bool operator<=(const_iterator a, const_iterator b) { return a.it_ <= b.it_; }
    friend bool operator>=(const_iterator a, const_iterator b) { return a.it_ >= b.it_; }

   private:
    std::deque<std::shared_ptr<QueryRecord>>::const_iterator it_;
  };
  using iterator = const_iterator;
  using const_reverse_iterator = std::reverse_iterator<const_iterator>;
  using value_type = QueryRecord;
  using size_type = size_t;

  size_t size() const { return impl_.size(); }
  bool empty() const { return impl_.empty(); }

  const QueryRecord& operator[](size_t i) const { return *impl_[i]; }
  const QueryRecord& front() const { return *impl_.front(); }
  const QueryRecord& back() const { return *impl_.back(); }

  const_iterator begin() const { return const_iterator(impl_.begin()); }
  const_iterator end() const { return const_iterator(impl_.end()); }
  const_reverse_iterator rbegin() const {
    return const_reverse_iterator(end());
  }
  const_reverse_iterator rend() const {
    return const_reverse_iterator(begin());
  }

  // --- writer side (QueryStore) -------------------------------------------

  void push_back(std::shared_ptr<QueryRecord> record) {
    impl_.push_back(std::move(record));
  }

  /// The owning pointer of record `i` — what a view publication copies.
  const std::shared_ptr<QueryRecord>& ptr(size_t i) const { return impl_[i]; }

  /// Mutable pointer slot, for the copy-on-write swap in GetMutable.
  std::shared_ptr<QueryRecord>& mutable_ptr(size_t i) { return impl_[i]; }

 private:
  std::deque<std::shared_ptr<QueryRecord>> impl_;
};

}  // namespace cqms::storage

#endif  // CQMS_STORAGE_RECORD_LOG_H_
