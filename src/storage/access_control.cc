#include "storage/access_control.h"

#include <algorithm>

namespace cqms::storage {

void AccessControl::AddUser(const std::string& user,
                            const std::vector<std::string>& groups) {
  // Idempotent re-registration (apps re-register their user set on
  // every startup) is a no-op: no epoch bump — which would invalidate
  // every VisibilityCache — and no WAL record.
  auto known = memberships_.find(user);
  if (known != memberships_.end()) {
    bool all_present = true;
    for (const std::string& g : groups) {
      if (known->second.count(g) == 0) {
        all_present = false;
        break;
      }
    }
    if (all_present) return;
  }
  auto& set = memberships_[user];
  for (const std::string& g : groups) set.insert(g);
  ++epoch_;
  for (StoreListener* l : listeners_) l->OnAclAddUser(user, groups);
}

void AccessControl::AddListener(StoreListener* listener) {
  if (listener == nullptr) return;
  if (std::find(listeners_.begin(), listeners_.end(), listener) ==
      listeners_.end()) {
    listeners_.push_back(listener);
  }
}

void AccessControl::RemoveListener(StoreListener* listener) {
  listeners_.erase(std::remove(listeners_.begin(), listeners_.end(), listener),
                   listeners_.end());
}

const std::set<std::string>& AccessControl::GroupsOf(const std::string& user) const {
  auto it = memberships_.find(user);
  return it == memberships_.end() ? empty_ : it->second;
}

bool AccessControl::ShareGroup(const std::string& a, const std::string& b) const {
  const auto& ga = GroupsOf(a);
  const auto& gb = GroupsOf(b);
  // Iterate the smaller set.
  const auto& small = ga.size() <= gb.size() ? ga : gb;
  const auto& large = ga.size() <= gb.size() ? gb : ga;
  for (const std::string& g : small) {
    if (large.count(g) > 0) return true;
  }
  return false;
}

Status AccessControl::SetVisibility(QueryId id, const std::string& owner,
                                    const std::string& requester,
                                    Visibility visibility) {
  if (owner != requester) {
    return Status::PermissionDenied("only the owner may change visibility of query " +
                                    std::to_string(id));
  }
  visibility_[id] = visibility;
  ++epoch_;
  for (StoreListener* l : listeners_) l->OnAclSetVisibility(id, visibility);
  return Status::Ok();
}

Visibility AccessControl::GetVisibility(QueryId id) const {
  auto it = visibility_.find(id);
  return it == visibility_.end() ? Visibility::kGroup : it->second;
}

bool AccessControl::CanSee(const std::string& viewer, const std::string& owner,
                           QueryId id) const {
  if (viewer == owner) return true;
  switch (GetVisibility(id)) {
    case Visibility::kPrivate:
      return false;
    case Visibility::kGroup:
      return ShareGroup(viewer, owner);
    case Visibility::kPublic:
      return true;
  }
  return false;
}

}  // namespace cqms::storage
