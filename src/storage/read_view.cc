#include "storage/read_view.h"

#include "common/sorted_vector.h"
#include "common/string_util.h"
#include "storage/query_store.h"

namespace cqms::storage {

namespace {

const std::vector<QueryId>& EmptyIds() {
  static const std::vector<QueryId> empty;
  return empty;
}

}  // namespace

const std::vector<QueryId>& PostingIndex::UsingTable(
    const std::string& table) const {
  // Find() never inserts, so probing unseen names cannot grow the
  // global interner.
  return UsingTableSymbol(GlobalInterner().Find(ToLower(table)));
}

const std::vector<QueryId>& PostingIndex::UsingTableSymbol(
    Symbol table) const {
  if (table == kInvalidSymbol) return EmptyIds();
  auto it = by_table.find(table);
  return it == by_table.end() ? EmptyIds() : it->second;
}

std::vector<QueryId> PostingIndex::UsingAnyTable(
    const std::vector<std::string>& tables) const {
  std::vector<QueryId> out;
  if (tables.size() == 1) {
    out = UsingTable(tables[0]);
    return out;
  }
  size_t total = 0;
  for (const std::string& t : tables) total += UsingTable(t).size();
  out.reserve(total);
  for (const std::string& t : tables) {
    const std::vector<QueryId>& ids = UsingTable(t);
    out.insert(out.end(), ids.begin(), ids.end());
  }
  SortUnique(&out);
  return out;
}

std::vector<QueryId> PostingIndex::UsingAnyTableSymbol(
    const std::vector<Symbol>& tables) const {
  std::vector<QueryId> out;
  if (tables.size() == 1) {
    out = UsingTableSymbol(tables[0]);
    return out;
  }
  size_t total = 0;
  for (Symbol t : tables) total += UsingTableSymbol(t).size();
  out.reserve(total);
  for (Symbol t : tables) {
    const std::vector<QueryId>& ids = UsingTableSymbol(t);
    out.insert(out.end(), ids.begin(), ids.end());
  }
  SortUnique(&out);
  return out;
}

const std::vector<QueryId>& PostingIndex::UsingAttribute(
    const std::string& relation, const std::string& attribute) const {
  return UsingAttributeSymbol(
      GlobalInterner().Find(ToLower(relation) + "." + ToLower(attribute)));
}

const std::vector<QueryId>& PostingIndex::UsingAttributeSymbol(
    Symbol qualified) const {
  if (qualified == kInvalidSymbol) return EmptyIds();
  auto it = by_attribute.find(qualified);
  return it == by_attribute.end() ? EmptyIds() : it->second;
}

const std::vector<QueryId>& PostingIndex::ByUser(const std::string& user) const {
  auto it = by_user.find(user);
  return it == by_user.end() ? EmptyIds() : it->second;
}

const std::vector<QueryId>& PostingIndex::WithKeyword(
    const std::string& word) const {
  return WithKeywordSymbol(GlobalInterner().Find(ToLower(word)));
}

const std::vector<QueryId>& PostingIndex::WithKeywordSymbol(
    Symbol token) const {
  if (token == kInvalidSymbol) return EmptyIds();
  auto it = by_keyword.find(token);
  return it == by_keyword.end() ? EmptyIds() : it->second;
}

const std::vector<QueryId>& PostingIndex::WithSkeleton(
    uint64_t skeleton_fp) const {
  auto it = by_skeleton.find(skeleton_fp);
  return it == by_skeleton.end() ? EmptyIds() : it->second;
}

uint64_t PostingIndex::PopularityOf(uint64_t fingerprint) const {
  auto it = by_fingerprint.find(fingerprint);
  return it == by_fingerprint.end() ? 0 : it->second.size();
}

// Out-of-line: ~map<..., unique_ptr<VisibilityCache>> needs the
// complete VisibilityCache.
ReadViewState::~ReadViewState() = default;

VisibilityCache& ReadViewState::CacheFor(const std::string& viewer) const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  auto key = std::make_pair(viewer, std::this_thread::get_id());
  std::unique_ptr<VisibilityCache>& slot = caches_[key];
  if (slot == nullptr) {
    slot = std::make_unique<VisibilityCache>(StoreView(*this), viewer);
  }
  return *slot;
}

VisibilityCache::VisibilityCache(const QueryStore* store, std::string viewer)
    : view_(*store), viewer_(std::move(viewer)) {}

bool VisibilityCache::AclVisible(QueryId id) const {
  // Invalidate-on-mutation: group memberships or per-query visibility
  // may have changed since the entries were memoized. (Frozen views
  // never bump their ACL epoch, so view-backed caches fill once.)
  uint64_t epoch = view_.acl().epoch();
  if (epoch != acl_epoch_) {
    acl_epoch_ = epoch;
    acl_ok_.clear();
    shares_group_.clear();
  }
  size_t idx = static_cast<size_t>(id);
  if (idx >= acl_ok_.size()) {
    acl_ok_.resize(view_.size(), kUnknown);
    // Find() never inserts; resolving here (not per candidate) keeps the
    // interner mutex off the hot path.
    viewer_symbol_ = GlobalInterner().Find(viewer_);
  }
  uint8_t cached = acl_ok_[idx];
  if (cached != kUnknown) {
    ++acl_hits_;
    return cached == kVisible;
  }
  ++acl_misses_;

  // Owner identity via the columns' interned Symbol — equality of ids is
  // equality of names, with no record-log touch.
  Symbol owner = view_.scoring().owner(id);
  bool visible = false;
  if (owner == viewer_symbol_ && owner != kInvalidSymbol) {
    visible = true;
  } else {
    switch (view_.acl().GetVisibility(id)) {
      case Visibility::kPrivate:
        visible = false;
        break;
      case Visibility::kPublic:
        visible = true;
        break;
      case Visibility::kGroup: {
        auto [it, inserted] = shares_group_.try_emplace(owner, false);
        if (inserted) {
          it->second = view_.acl().ShareGroup(
              viewer_, std::string(GlobalInterner().NameOf(owner)));
        }
        visible = it->second;
        break;
      }
    }
  }
  acl_ok_[idx] = visible ? kVisible : kHidden;
  return visible;
}

}  // namespace cqms::storage
