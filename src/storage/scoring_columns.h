#ifndef CQMS_STORAGE_SCORING_COLUMNS_H_
#define CQMS_STORAGE_SCORING_COLUMNS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/interner.h"
#include "storage/query_record.h"

namespace cqms::storage {

/// Columnar copies of every record field the meta-query scoring loop
/// touches, maintained by QueryStore alongside its secondary indexes.
///
/// The kNN/ranking inner loop visits thousands of candidates per call;
/// reading each one through the record deque costs a scattered ~500-byte
/// struct touch plus one heap hop per signature vector plus a
/// fingerprint hash lookup for popularity — the ~200ns/candidate
/// memory-bound profile the roadmap describes. This side-table packs the
/// hot fields the loop actually reads into parallel vectors (one
/// contiguous row per record) and concatenates every record's signature
/// into two shared arenas, so scoring streams cache lines instead of
/// chasing pointers:
///
///   - flags / quality / timestamp / owner-Symbol scalars,
///   - a popularity *slot* index into a shared per-fingerprint count
///     vector (popularity becomes two dependent array loads, no hashing),
///   - the similarity signature as spans into a Symbol arena plus an
///     output-row-hash arena,
///   - the lower-cased query text in a character arena (substring scans
///     stop re-lowercasing the whole log per call).
///
/// Coherence: QueryStore updates the columns in Append, RewriteQueryText,
/// flag/quality mutators and SyncOutputSignature. A rewrite re-packs the
/// record's arena runs at the arena tail and orphans the old runs
/// (rewrites are rare repair events; `arena_garbage()` reports the dead
/// volume should compaction ever become worthwhile).
class ScoringColumns {
 public:
  /// pop_slot value for records that carry no canonical fingerprint
  /// (parse failures); their popularity reads as 0.
  static constexpr uint32_t kNoPopularitySlot = 0xFFFFFFFFu;

  // Bits of SignatureRef::bits.
  static constexpr uint8_t kSigValid = 1u << 0;
  static constexpr uint8_t kSigParsed = 1u << 1;
  static constexpr uint8_t kSigOutputEmptyComputed = 1u << 2;

  /// Packed directory entry locating one record's signature inside the
  /// arenas. Section order in the Symbol arena: tables, predicate
  /// skeletons, attributes, projections, text tokens — each sorted
  /// ascending and deduplicated, exactly the record's
  /// SimilaritySignature vectors.
  struct SignatureRef {
    uint32_t begin = 0;  ///< First Symbol of this record's runs.
    uint16_t n_tables = 0;
    uint16_t n_skeletons = 0;
    uint16_t n_attributes = 0;
    uint16_t n_projections = 0;
    uint16_t n_tokens = 0;
    uint8_t bits = 0;
    uint32_t out_begin = 0;  ///< First output-row hash.
    uint32_t n_output = 0;
    uint32_t text_begin = 0;  ///< First byte of the lowered text.
    uint32_t text_len = 0;
  };

  struct SymbolSpan {
    const Symbol* data = nullptr;
    size_t size = 0;
  };
  struct HashSpan {
    const uint64_t* data = nullptr;
    size_t size = 0;
  };

  size_t size() const { return flags_.size(); }

  // --- maintenance (QueryStore only) --------------------------------------

  /// Pre-sizes the per-record column vectors for `records` rows (bulk
  /// snapshot restore; arenas still grow on demand).
  void Reserve(size_t records);

  /// Appends the columnar row of a just-stored record. `record.id` must
  /// equal size(). `owner` is the interned record.user.
  void AppendRecord(const QueryRecord& record, uint32_t pop_slot, Symbol owner);

  /// Re-packs a rewritten record: new signature runs and lowered text go
  /// to the arena tails, the popularity slot is replaced. Scalars that
  /// RewriteQueryText preserves (quality, timestamp, owner) are kept.
  void RewriteRecord(const QueryRecord& record, uint32_t pop_slot);

  /// Refreshes only the output-derived signature section after a summary
  /// replacement (maintenance stats refresh). Returns whether anything
  /// actually changed (hash run or the empty-computed bit) — a stats
  /// refresh usually re-executes to the same output, and callers use
  /// this to skip change-feed notifications for no-op syncs.
  bool SyncOutput(const QueryRecord& record);

  void SetFlags(QueryId id, uint32_t flags) {
    flags_[static_cast<size_t>(id)] = flags;
  }
  void SetQuality(QueryId id, double quality) {
    quality_[static_cast<size_t>(id)] = quality;
  }

  /// Creates a new popularity slot (count 0) and returns its index.
  uint32_t NewPopularitySlot();
  void AddSlotRef(uint32_t slot) { ++pop_counts_[slot]; }
  void ReleaseSlotRef(uint32_t slot) { --pop_counts_[slot]; }

  // --- hot reads ----------------------------------------------------------

  uint32_t flags(QueryId id) const { return flags_[static_cast<size_t>(id)]; }
  double quality(QueryId id) const { return quality_[static_cast<size_t>(id)]; }
  int64_t timestamp(QueryId id) const {
    return timestamp_[static_cast<size_t>(id)];
  }
  Symbol owner(QueryId id) const { return owner_[static_cast<size_t>(id)]; }
  uint32_t pop_slot(QueryId id) const {
    return pop_slot_[static_cast<size_t>(id)];
  }
  /// Canonical-duplicate count of the record's fingerprint (0 for parse
  /// failures) — equals QueryStore::PopularityOf(record.fingerprint).
  uint64_t popularity(QueryId id) const {
    uint32_t slot = pop_slot_[static_cast<size_t>(id)];
    return slot == kNoPopularitySlot ? 0 : pop_counts_[slot];
  }

  bool signature_valid(QueryId id) const {
    return (sig_[static_cast<size_t>(id)].bits & kSigValid) != 0;
  }
  bool parse_failed(QueryId id) const {
    return (sig_[static_cast<size_t>(id)].bits & kSigParsed) == 0;
  }
  bool output_empty_computed(QueryId id) const {
    return (sig_[static_cast<size_t>(id)].bits & kSigOutputEmptyComputed) != 0;
  }

  SymbolSpan tables(QueryId id) const {
    const SignatureRef& s = sig_[static_cast<size_t>(id)];
    return {sym_arena_.data() + s.begin, s.n_tables};
  }
  SymbolSpan skeletons(QueryId id) const {
    const SignatureRef& s = sig_[static_cast<size_t>(id)];
    return {sym_arena_.data() + s.begin + s.n_tables, s.n_skeletons};
  }
  SymbolSpan attributes(QueryId id) const {
    const SignatureRef& s = sig_[static_cast<size_t>(id)];
    return {sym_arena_.data() + s.begin + s.n_tables + s.n_skeletons,
            s.n_attributes};
  }
  SymbolSpan projections(QueryId id) const {
    const SignatureRef& s = sig_[static_cast<size_t>(id)];
    return {sym_arena_.data() + s.begin + s.n_tables + s.n_skeletons +
                s.n_attributes,
            s.n_projections};
  }
  SymbolSpan tokens(QueryId id) const {
    const SignatureRef& s = sig_[static_cast<size_t>(id)];
    return {sym_arena_.data() + s.begin + s.n_tables + s.n_skeletons +
                s.n_attributes + s.n_projections,
            s.n_tokens};
  }
  HashSpan output_rows(QueryId id) const {
    const SignatureRef& s = sig_[static_cast<size_t>(id)];
    return {out_arena_.data() + s.out_begin, s.n_output};
  }

  /// The record's query text, lower-cased once at append/rewrite time.
  std::string_view lowered_text(QueryId id) const {
    const SignatureRef& s = sig_[static_cast<size_t>(id)];
    return std::string_view(text_arena_.data() + s.text_begin, s.text_len);
  }

  /// True when the record's (sorted) token section contains `token`.
  bool TokenPresent(QueryId id, Symbol token) const;

  /// Dead arena bytes (Symbol runs, output hashes and lowered text)
  /// orphaned by rewrites and output refreshes — the signal the
  /// maintenance pass compares against its compaction threshold.
  size_t arena_garbage() const { return arena_garbage_; }

  /// Rebuilds the three arenas in id order, dropping every orphaned
  /// run, and resets arena_garbage() to zero. Returns the bytes
  /// reclaimed. Invalidates any outstanding SymbolSpan/HashSpan/
  /// string_view handed out by the accessors (like a rehash); callers
  /// hold none across mutations, so maintenance runs this safely
  /// between queries.
  size_t Compact();

 private:
  /// Appends signature runs + lowered text at the arena tails and
  /// returns the directory entry describing them.
  SignatureRef PackRecord(const QueryRecord& record);

  std::vector<uint32_t> flags_;
  std::vector<double> quality_;
  std::vector<int64_t> timestamp_;
  std::vector<Symbol> owner_;
  std::vector<uint32_t> pop_slot_;
  std::vector<SignatureRef> sig_;
  std::vector<uint64_t> pop_counts_;  ///< Count per popularity slot.
  std::vector<Symbol> sym_arena_;
  std::vector<uint64_t> out_arena_;
  std::string text_arena_;
  size_t arena_garbage_ = 0;  ///< Bytes, across all three arenas.
};

}  // namespace cqms::storage

#endif  // CQMS_STORAGE_SCORING_COLUMNS_H_
