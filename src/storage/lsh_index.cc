#include "storage/lsh_index.h"

#include <algorithm>

#include "common/hash.h"
#include "common/sorted_vector.h"

namespace cqms::storage {

LshIndex::LshIndex(LshParams params) : params_(params) {
  if (params_.bands == 0) params_.bands = 1;
  if (params_.rows == 0) params_.rows = 1;
  // The banding must fit the sketch; shrink bands rather than read past
  // the end of the slot array.
  if (params_.bands * params_.rows > MinHashSketch::kSize) {
    params_.bands = MinHashSketch::kSize / params_.rows;
    if (params_.bands == 0) {
      params_.bands = 1;
      params_.rows = MinHashSketch::kSize;
    }
  }
  buckets_.resize(params_.bands);
}

uint64_t LshIndex::BandKey(const MinHashSketch& sketch, size_t band) const {
  // No band salt needed: each band has its own bucket map, so keys from
  // different bands never meet.
  uint64_t key = 0x8f1bbcdc8f1bbcdcULL;
  const size_t start = band * params_.rows;
  for (size_t r = 0; r < params_.rows; ++r) {
    key = HashCombine(key, sketch.mins[start + r]);
  }
  return key;
}

void LshIndex::Reserve(size_t records) {
  for (auto& band : buckets_) band.reserve(records);
}

void LshIndex::Insert(QueryId id, const MinHashSketch& sketch) {
  if (!sketch.valid || sketch.empty()) return;
  for (size_t band = 0; band < params_.bands; ++band) {
    InsertSorted(&buckets_[band][BandKey(sketch, band)], id);
  }
  id_bound_ = std::max(id_bound_, id + 1);
}

void LshIndex::Remove(QueryId id, const MinHashSketch& sketch) {
  if (!sketch.valid || sketch.empty()) return;
  for (size_t band = 0; band < params_.bands; ++band) {
    auto it = buckets_[band].find(BandKey(sketch, band));
    if (it == buckets_[band].end()) continue;
    EraseSorted(&it->second, id);
    if (it->second.empty()) buckets_[band].erase(it);
  }
}

std::vector<QueryId> LshIndex::Candidates(const MinHashSketch& sketch,
                                          size_t probe_bands,
                                          LshProbeScratch* scratch) const {
  std::vector<QueryId> out;
  if (!sketch.valid || sketch.empty()) return out;
  if (scratch == nullptr) {
    // Per-thread scratch: safe to share across indexes because the
    // epoch stamp invalidates whatever a previous probe (of any index)
    // left behind, and the table only ever grows.
    thread_local LshProbeScratch tls_scratch;
    scratch = &tls_scratch;
  }
  size_t limit = probe_bands == 0 ? params_.bands
                                  : std::min(probe_bands, params_.bands);
  // Bucket posting lists overlap heavily (near-duplicates co-bucket in
  // every band), so dedup with an epoch-stamped scratch table instead
  // of sort+unique over the concatenation: O(total postings) per call
  // with no per-call zeroing or allocation (the table grows once to the
  // id bound and is invalidated by bumping the epoch).
  const uint64_t epoch = ++scratch->epoch_;
  if (scratch->seen_epoch_.size() < static_cast<size_t>(id_bound_)) {
    scratch->seen_epoch_.resize(static_cast<size_t>(id_bound_), 0);
  }
  for (size_t band = 0; band < limit; ++band) {
    auto it = buckets_[band].find(BandKey(sketch, band));
    if (it == buckets_[band].end()) continue;
    for (QueryId id : it->second) {
      uint64_t& stamp = scratch->seen_epoch_[static_cast<size_t>(id)];
      if (stamp != epoch) {
        stamp = epoch;
        out.push_back(id);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

size_t LshIndex::entry_count() const {
  size_t total = 0;
  for (const auto& band : buckets_) {
    for (const auto& [key, ids] : band) total += ids.size();
  }
  return total;
}

bool LshIndex::ContainsExactlyOnce(QueryId id, const MinHashSketch& sketch) const {
  if (!sketch.valid || sketch.empty()) return false;
  for (size_t band = 0; band < params_.bands; ++band) {
    auto it = buckets_[band].find(BandKey(sketch, band));
    if (it == buckets_[band].end()) return false;
    if (std::count(it->second.begin(), it->second.end(), id) != 1) return false;
  }
  return true;
}

}  // namespace cqms::storage
