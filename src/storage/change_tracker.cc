#include "storage/change_tracker.h"

#include "common/sorted_vector.h"
#include "storage/query_store.h"

namespace cqms::storage {

ChangeTracker::~ChangeTracker() { Detach(); }

void ChangeTracker::Attach(QueryStore* store) {
  Detach();
  store_ = store;
  if (store_ != nullptr) store_->AddListener(this);
}

void ChangeTracker::Detach() {
  if (store_ != nullptr) store_->RemoveListener(this);
  store_ = nullptr;
}

ChangeDelta ChangeTracker::Drain() {
  ChangeDelta out = std::move(pending_);
  pending_ = ChangeDelta{};
  return out;
}

void ChangeTracker::OnAppend(const QueryRecord& record) {
  if (Suppressed()) return;
  // Ids are assigned monotonically, so plain push_back keeps the set
  // sorted and duplicate-free.
  pending_.appended.push_back(record.id);
}

void ChangeTracker::OnRewrite(QueryId id, const std::string& new_text) {
  (void)new_text;
  if (Suppressed()) return;
  InsertSorted(&pending_.rewritten, id);
}

void ChangeTracker::OnAnnotate(QueryId id, const Annotation& annotation) {
  // Annotations feed no mining pass.
  (void)id;
  (void)annotation;
}

void ChangeTracker::OnFlagChange(QueryId id, QueryFlags flag, bool set) {
  if (Suppressed() || flag != kFlagDeleted) return;
  if (set) {
    InsertSorted(&pending_.deleted, id);
  } else {
    InsertSorted(&pending_.undeleted, id);
  }
}

void ChangeTracker::OnSetSession(QueryId id, SessionId session) {
  (void)session;
  if (Suppressed()) return;
  InsertSorted(&pending_.session_reassigned, id);
}

void ChangeTracker::OnSetQuality(QueryId id, double quality) {
  // Quality feeds ranking, not mining.
  (void)id;
  (void)quality;
}

void ChangeTracker::OnDelete(QueryId id) {
  if (Suppressed()) return;
  InsertSorted(&pending_.deleted, id);
}

void ChangeTracker::OnSyncOutputSignature(QueryId id) {
  if (Suppressed()) return;
  InsertSorted(&pending_.output_synced, id);
}

void ChangeTracker::OnAclAddUser(const std::string& user,
                                 const std::vector<std::string>& groups) {
  // Mining reads the raw log; ACL applies at meta-query time.
  (void)user;
  (void)groups;
}

void ChangeTracker::OnAclSetVisibility(QueryId id, Visibility visibility) {
  (void)id;
  (void)visibility;
}

}  // namespace cqms::storage
