#ifndef CQMS_STORAGE_EPOCH_H_
#define CQMS_STORAGE_EPOCH_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

namespace cqms::storage {

/// Epoch-based reclamation for read-mostly published objects (the
/// QueryStore's ReadViewState snapshots).
///
/// Protocol:
///   - A reader claims a slot and stamps it with the current global
///     epoch (Pin). While the slot is stamped, any object it could have
///     observed through a subsequently-loaded published pointer stays
///     allocated. Pin/Unpin are lock-free: a handful of atomic
///     operations, no mutex, no allocation.
///   - The writer, after unpublishing an object (swapping the published
///     pointer to its successor), hands the old object to Retire. The
///     retire advances the global epoch; the object is destroyed by a
///     later Reclaim once every slot stamped at or before the retire
///     epoch has been released.
///
/// Why an object retired at epoch R is safe to free once
/// min(active slot epochs) > R: a reader stamps its slot and then
/// re-validates against the global epoch *before* loading the published
/// pointer (see Pin). With seq_cst ordering, a reader whose slot holds
/// an epoch greater than R must have stamped after the writer's
/// epoch advance in Retire — which happens after the pointer swap — so
/// its pointer load can only observe the successor, never the retired
/// object.
///
/// Long-lived consumers (the miner, a checkpoint backup) should not
/// hold a pin for the duration of their work: a pinned slot blocks
/// reclamation of *everything* retired after it, not just the one view
/// they read. They take a shared_ptr snapshot instead
/// (QueryStore::SharedView), which keeps exactly one view alive via
/// refcount and lets epoch reclamation proceed around it.
class EpochDomain {
 public:
  /// Maximum simultaneously pinned readers. Pins beyond this spin-wait
  /// for a slot; sized for "threads serving queries", not "concurrent
  /// users" (each pin spans one meta-query execution).
  static constexpr size_t kMaxSlots = 64;

  /// Sentinel slot index returned by TryPin when every slot is taken.
  static constexpr size_t kNoSlot = ~size_t{0};

  EpochDomain() = default;
  EpochDomain(const EpochDomain&) = delete;
  EpochDomain& operator=(const EpochDomain&) = delete;

  /// Claims a slot and stamps it with the current global epoch.
  /// Lock-free; spins (with yields) only when all kMaxSlots slots are
  /// simultaneously pinned. Returns the slot index for Unpin.
  size_t Pin();

  /// Single-attempt variant: returns kNoSlot instead of waiting.
  size_t TryPin();

  /// Releases a slot returned by Pin. The caller must not dereference
  /// any epoch-protected pointer after this.
  void Unpin(size_t slot);

  /// Writer side: queues `object` for destruction once no pinned reader
  /// can still observe it, and advances the global epoch. Must be
  /// called only after the object has been unpublished. Thread-safe,
  /// but by design there is a single retiring writer.
  void Retire(std::shared_ptr<const void> object);

  /// Destroys every retired object whose retire epoch precedes all
  /// currently pinned slots. Called by the writer after each publish;
  /// cheap (one scan of the slot array) and safe to call at any time.
  void Reclaim();

  /// Retired-but-not-yet-reclaimed objects (introspection / tests).
  size_t retired_count() const;

  uint64_t global_epoch() const {
    return global_epoch_.load(std::memory_order_seq_cst);
  }

 private:
  /// One cache line per slot so pinning readers do not false-share.
  struct alignas(64) Slot {
    /// 0 = idle; otherwise the global epoch observed at pin time.
    std::atomic<uint64_t> epoch{0};
  };

  /// Smallest epoch across pinned slots, or ~0 when none are pinned.
  uint64_t MinActiveEpoch() const;

  Slot slots_[kMaxSlots];
  /// Starts at 1 so a stamped slot is never confused with idle (0).
  std::atomic<uint64_t> global_epoch_{1};

  mutable std::mutex retire_mu_;
  std::vector<std::pair<uint64_t, std::shared_ptr<const void>>> retired_;
};

}  // namespace cqms::storage

#endif  // CQMS_STORAGE_EPOCH_H_
