#ifndef CQMS_STORAGE_ENV_H_
#define CQMS_STORAGE_ENV_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace cqms::storage {

/// A writable file handle with the three durability layers the storage
/// code reasons about: Append lands bytes in an application buffer,
/// Flush pushes them to the OS (they now survive a process crash),
/// Sync puts them on stable storage (they now survive power loss).
/// The POSIX implementation maps these onto buffered stdio + fsync(2)
/// exactly as the storage layer called them before the Env seam
/// existed, so the syscall sequence — and therefore the crash
/// semantics — of WAL appends and atomic snapshot writes is unchanged.
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  virtual Status Append(std::string_view data) = 0;
  virtual Status Flush() = 0;
  /// Flushes, then forces the file content to stable storage. Does NOT
  /// persist the file's directory entry; see Env::SyncDir.
  virtual Status Sync() = 0;
  /// Shrinks the file to `size` bytes — the WAL's rollback of a
  /// partially written frame. Buffered-but-unflushed bytes are
  /// discarded on a best-effort basis.
  virtual Status Truncate(uint64_t size) = 0;
  virtual Status Close() = 0;
};

/// Positional reads; one handle may serve many reads.
class RandomAccessFile {
 public:
  virtual ~RandomAccessFile() = default;

  virtual Status Size(uint64_t* size) = 0;
  /// Reads up to `n` bytes at `offset` into `*out` (resized to what was
  /// actually read; short only at EOF).
  virtual Status Read(uint64_t offset, size_t n, std::string* out) = 0;
};

/// The filesystem the storage layer talks to. Production code uses
/// Env::Default() (POSIX); tests substitute FaultInjectingEnv
/// (fault_env.h) to inject errors, short writes, ENOSPC and simulated
/// power loss at any individual I/O operation. All storage entry
/// points (WalWriter, ReplayWal, Save/LoadSnapshot, DurableStore)
/// accept an Env and treat null as Env::Default().
class Env {
 public:
  enum class WriteMode {
    kTruncate,  ///< Create or clobber (fopen "wb").
    kAppend,    ///< Create or append (fopen "ab").
  };

  virtual ~Env() = default;

  virtual Status NewWritableFile(const std::string& path, WriteMode mode,
                                 std::unique_ptr<WritableFile>* file) = 0;
  virtual Status NewRandomAccessFile(
      const std::string& path, std::unique_ptr<RandomAccessFile>* file) = 0;

  virtual bool FileExists(const std::string& path) = 0;
  virtual Status GetFileSize(const std::string& path, uint64_t* size) = 0;
  virtual Status RenameFile(const std::string& from, const std::string& to) = 0;
  virtual Status RemoveFile(const std::string& path) = 0;
  virtual Status TruncateFile(const std::string& path, uint64_t size) = 0;
  virtual Status CreateDirIfMissing(const std::string& dir) = 0;
  /// Persists the directory's entries (creations, renames, removals)
  /// to stable storage — fsync(2) of the directory fd. A rename is not
  /// power-loss durable until this succeeds; open or fsync failure is
  /// reported, not swallowed.
  virtual Status SyncDir(const std::string& dir) = 0;
  /// Names (not paths) of the directory's entries, excluding "." / "..".
  virtual Status ListDir(const std::string& dir,
                         std::vector<std::string>* names) = 0;

  /// The process-wide POSIX environment.
  static Env* Default();
};

/// Directory part of `path` ("." when it has no slash).
std::string DirnameOf(const std::string& path);

}  // namespace cqms::storage

#endif  // CQMS_STORAGE_ENV_H_
