#ifndef CQMS_STORAGE_MINHASH_H_
#define CQMS_STORAGE_MINHASH_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace cqms::storage {

struct SimilaritySignature;

/// MinHash sketch of one record's similarity-relevant token sets: a
/// fixed-width vector of permutation minima over the record's sketch
/// elements (see SketchElements). Two sketches estimate the Jaccard
/// similarity of the underlying element sets as the fraction of matching
/// slots — O(kSize) with no allocations, independent of set sizes.
/// Computed once at build/append/rewrite time alongside the signature;
/// the LshIndex buckets band-wise slices of it for sub-linear candidate
/// generation.
struct MinHashSketch {
  /// Number of permutations. 64 gives a standard error of
  /// sqrt(J(1-J)/64) <= 0.0625 on the Jaccard estimate and divides
  /// evenly into every banding scheme the LshIndex supports.
  static constexpr size_t kSize = 64;
  /// Slot value when the element set is empty (no element ever hashes
  /// to it in practice, so two empty sets estimate Jaccard 1.0 —
  /// matching the SortedJaccard both-empty convention).
  static constexpr uint64_t kEmptySlot = ~0ULL;

  std::array<uint64_t, kSize> mins;
  bool valid = false;  ///< Set once computed from a signature.

  MinHashSketch() { mins.fill(kEmptySlot); }

  /// True when the sketch was computed over zero elements. Such records
  /// (e.g. an unparsable query whose every token is a SQL keyword) are
  /// not indexable: bucketing them would collide every empty record
  /// into one mega-bucket per band.
  bool empty() const { return mins[0] == kEmptySlot; }
};

/// The 64-bit element hashes the sketch summarizes, sorted and
/// deduplicated: every Symbol of the signature's tables, predicate
/// skeletons, attributes, projections and text tokens, salted per field
/// so equal Symbols in different fields stay distinct elements. SQL
/// reserved keywords are excluded from the text tokens — they appear in
/// virtually every query and would otherwise push the Jaccard of
/// unrelated queries high enough to defeat LSH banding. Output-row
/// hashes are deliberately not elements: probes carry no output, and
/// stats refresh may replace summaries without re-bucketing records.
///
/// The exact SortedJaccard over two records' element vectors is the
/// quantity EstimateJaccard approximates (the property test asserts the
/// convergence).
std::vector<uint64_t> SketchElements(const SimilaritySignature& signature);

/// Computes the sketch of `signature`. Permutations are derived from
/// each element hash by Kirsch-Mitzenmacher double hashing (two mixes
/// per element, then k multiply-adds), so cost is O(elements * kSize)
/// with small constants. Deterministic across platforms and runs.
MinHashSketch ComputeMinHashSketch(const SimilaritySignature& signature);

/// Fraction of matching slots — an unbiased estimate of the Jaccard
/// similarity of the two element sets. Both inputs must be valid.
double EstimateJaccard(const MinHashSketch& a, const MinHashSketch& b);

}  // namespace cqms::storage

#endif  // CQMS_STORAGE_MINHASH_H_
