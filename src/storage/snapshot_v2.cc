#include "storage/snapshot_v2.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "common/binary_codec.h"
#include "common/interner.h"
#include "common/sorted_vector.h"
#include "storage/minhash.h"
#include "storage/persistence.h"

namespace cqms::storage {

namespace {

// On-disk layout:
//   magic "CQMSNAP2" (8 bytes)
//   fixed32 format version (= 2)
//   sections, each framed as
//     u8 section id | fixed64 payload length | payload | fixed32 CRC32
//   terminated by an End section with an empty payload.
// Section order is fixed (Interner, Acl, Records, End): the interner
// slice must be decoded before any signature vector referencing it.
constexpr uint32_t kFormatVersion = 2;

enum SectionId : uint8_t {
  kSectionInterner = 1,
  kSectionAcl = 2,
  kSectionRecords = 3,
  /// Durability metadata: fixed64 WAL sequence covered by this snapshot
  /// (see DurableStore; 0 for plain SaveSnapshotV2 saves). Written after
  /// the records; readers that predate it skip unknown sections.
  kSectionDurability = 4,
  kSectionEnd = 0xFF,
};

// Per-record bit flags (one byte in the record header).
constexpr uint8_t kBitParsed = 1u << 0;
constexpr uint8_t kBitSigValid = 1u << 1;
constexpr uint8_t kBitOutputEmptyComputed = 1u << 2;
constexpr uint8_t kBitSketchValid = 1u << 3;

void PutSymbolRun(BinaryWriter* w, const std::vector<Symbol>& symbols) {
  // Signature vectors are sorted ascending, so delta varints stay tiny.
  w->PutVarint(symbols.size());
  Symbol prev = 0;
  for (Symbol s : symbols) {
    w->PutVarint(s - prev);
    prev = s;
  }
}

std::vector<Symbol> GetSymbolRun(BinaryReader* r) {
  uint64_t n = r->GetVarint();
  if (r->failed() || n > r->remaining()) {  // >= 1 byte per element
    r->Invalidate();
    return {};
  }
  std::vector<Symbol> out;
  out.reserve(n);
  Symbol prev = 0;
  for (uint64_t i = 0; i < n; ++i) {
    prev += static_cast<Symbol>(r->GetVarint());
    out.push_back(prev);
  }
  return out;
}

void PutStringList(BinaryWriter* w, const std::vector<std::string>& v) {
  w->PutVarint(v.size());
  for (const std::string& s : v) w->PutString(s);
}

std::vector<std::string> GetStringList(BinaryReader* r) {
  uint64_t n = r->GetVarint();
  if (r->failed() || n > r->remaining()) {
    r->Invalidate();
    return {};
  }
  std::vector<std::string> out;
  out.reserve(n);
  for (uint64_t i = 0; i < n; ++i) out.push_back(r->GetString());
  return out;
}

void AppendSection(std::string* out, uint8_t id, const std::string& payload) {
  BinaryWriter header;
  header.PutU8(id);
  header.PutFixed64(payload.size());
  out->append(header.data());
  out->append(payload);
  BinaryWriter crc;
  crc.PutFixed32(Crc32(payload));
  out->append(crc.data());
}

// ---------------------------------------------------------------------------
// Save

void EncodeRecord(BinaryWriter* w, const QueryRecord& r) {
  const bool parsed = !r.parse_failed();
  uint8_t bits = 0;
  if (parsed) bits |= kBitParsed;
  if (r.signature.valid) bits |= kBitSigValid;
  if (r.signature.output_empty_computed) bits |= kBitOutputEmptyComputed;
  if (r.sketch.valid) bits |= kBitSketchValid;
  w->PutU8(bits);

  w->PutString(r.text);
  w->PutString(r.user);
  w->PutZigzag(r.timestamp);
  w->PutZigzag(r.session_id);
  w->PutVarint(r.flags);
  w->PutDouble(r.quality);

  w->PutZigzag(r.stats.execution_micros);
  w->PutVarint(r.stats.result_rows);
  w->PutVarint(r.stats.rows_scanned);
  w->PutU8(r.stats.succeeded ? 1 : 0);
  w->PutString(r.stats.error);
  w->PutString(r.stats.plan);

  w->PutVarint(r.annotations.size());
  for (const Annotation& a : r.annotations) {
    w->PutString(a.author);
    w->PutZigzag(a.timestamp);
    w->PutString(a.text);
    w->PutString(a.fragment);
  }

  if (parsed) {
    w->PutString(r.canonical_text);
    w->PutString(r.skeleton);
    w->PutFixed64(r.fingerprint);
    w->PutFixed64(r.skeleton_fingerprint);
    const sql::QueryComponents& c = r.components;
    PutStringList(w, c.tables);
    w->PutVarint(c.attributes.size());
    for (const auto& [rel, attr] : c.attributes) {
      w->PutString(rel);
      w->PutString(attr);
    }
    PutStringList(w, c.projections);
    w->PutVarint(c.predicates.size());
    for (const sql::PredicateFeature& p : c.predicates) {
      w->PutString(p.relation);
      w->PutString(p.attribute);
      w->PutString(p.op);
      w->PutString(p.constant);
      w->PutU8(p.is_join ? 1 : 0);
      w->PutString(p.rhs_relation);
      w->PutString(p.rhs_attribute);
    }
    PutStringList(w, c.group_by);
    PutStringList(w, c.order_by);
    PutStringList(w, c.aggregates);
    uint8_t cbits = 0;
    if (c.has_subquery) cbits |= 1u << 0;
    if (c.has_distinct) cbits |= 1u << 1;
    if (c.select_star) cbits |= 1u << 2;
    if (c.limit.has_value()) cbits |= 1u << 3;
    w->PutU8(cbits);
    w->PutZigzag(c.num_joins);
    w->PutZigzag(c.num_tables);
    w->PutZigzag(c.max_nesting_depth);
    if (c.limit.has_value()) w->PutZigzag(*c.limit);
  }

  if (r.signature.valid) {
    PutSymbolRun(w, r.signature.tables);
    PutSymbolRun(w, r.signature.predicate_skeletons);
    PutSymbolRun(w, r.signature.attributes);
    PutSymbolRun(w, r.signature.projections);
    PutSymbolRun(w, r.signature.text_tokens);
    PutDeltaU64s(w, r.signature.output_rows);
  }

  if (r.sketch.valid) {
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
    // One 512-byte blob: the slots are little-endian u64s on disk.
    w->PutBytes(r.sketch.mins.data(), sizeof(r.sketch.mins));
#else
    for (uint64_t slot : r.sketch.mins) w->PutFixed64(slot);
#endif
  }
}

/// One past the highest Symbol any stored record references — the
/// interner-table prefix the snapshot must carry. The *full* prefix is
/// serialized, not just the referenced subset: unreferenced ids inside
/// it (owner names interned between signature builds) would otherwise
/// leave gaps, a fresh process's BulkIntern would assign dense ids that
/// shift past every gap, and the identity fast path — the one a
/// production cold start takes, where stored sketches are adopted
/// verbatim — could never trigger outside the saving process itself.
template <typename Source>  // QueryStore or ReadViewState
Symbol ReferencedSymbolLimit(const Source& store) {
  Symbol limit = 0;
  auto bump = [&limit](const std::vector<Symbol>& symbols) {
    // Vectors are sorted ascending: the last entry is the max.
    if (!symbols.empty()) limit = std::max(limit, symbols.back() + 1);
  };
  for (const QueryRecord& r : store.records()) {
    const SimilaritySignature& s = r.signature;
    bump(s.tables);
    bump(s.predicate_skeletons);
    bump(s.attributes);
    bump(s.projections);
    bump(s.text_tokens);
  }
  return limit;
}

// ---------------------------------------------------------------------------
// Load

/// old snapshot Symbol -> current process Symbol. Identity loads (fresh
/// process, or same process as the save) skip the per-symbol hash
/// lookups and adopt stored sketches verbatim.
struct SymbolRemap {
  std::unordered_map<Symbol, Symbol> map;
  bool identity = true;

  void Apply(std::vector<Symbol>* symbols, bool* ok) const {
    if (identity) return;
    for (Symbol& s : *symbols) {
      auto it = map.find(s);
      if (it == map.end()) {
        *ok = false;  // signature references a symbol the table lacks
        return;
      }
      s = it->second;
    }
    // Distinct strings stay distinct under the remap, but the new ids
    // permute the order; signatures must stay sorted and deduplicated
    // for the merge kernels (dedup matters only for a forged table
    // carrying the same name under two ids).
    SortUnique(symbols);
  }
};

Status CorruptSnapshot(const std::string& path, const std::string& what) {
  return Status::Corruption("corrupt v2 snapshot (" + what + "): " + path);
}

Status DecodeInterner(BinaryReader* r, SymbolRemap* remap,
                      const std::string& path) {
  uint64_t count = r->GetVarint();
  if (r->failed() || count > r->remaining()) {
    return CorruptSnapshot(path, "interner count");
  }
  std::vector<Symbol> old_ids;
  std::vector<std::string> names;
  old_ids.reserve(count);
  names.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    old_ids.push_back(static_cast<Symbol>(r->GetVarint()));
    names.push_back(r->GetString());
  }
  if (!r->AtEnd()) return CorruptSnapshot(path, "interner payload");
  std::vector<Symbol> new_ids = GlobalInterner().BulkIntern(names);
  remap->map.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    remap->map.emplace(old_ids[i], new_ids[i]);
    if (old_ids[i] != new_ids[i]) remap->identity = false;
  }
  return Status::Ok();
}

Status DecodeAcl(BinaryReader* r, QueryStore* store, const std::string& path) {
  uint64_t users = r->GetVarint();
  if (r->failed() || users > r->remaining()) {
    return CorruptSnapshot(path, "acl user count");
  }
  for (uint64_t i = 0; i < users; ++i) {
    std::string user = r->GetString();
    std::vector<std::string> groups = GetStringList(r);
    if (r->failed()) return CorruptSnapshot(path, "acl membership");
    store->acl().AddUser(user, groups);
  }
  uint64_t vis_count = r->GetVarint();
  if (r->failed() || vis_count > r->remaining()) {
    return CorruptSnapshot(path, "acl visibility count");
  }
  for (uint64_t i = 0; i < vis_count; ++i) {
    QueryId id = static_cast<QueryId>(r->GetVarint());
    uint8_t vis = r->GetU8();
    if (vis > static_cast<uint8_t>(Visibility::kPublic)) {
      return CorruptSnapshot(path, "visibility value");
    }
    // Owner/requester checks do not apply to a restore; the empty
    // owner==requester pair passes validation by construction.
    Status s = store->acl().SetVisibility(id, "", "",
                                          static_cast<Visibility>(vis));
    if (!s.ok()) return s;
  }
  if (!r->AtEnd()) return CorruptSnapshot(path, "acl payload");
  return Status::Ok();
}

Status DecodeRecord(BinaryReader* r, const SymbolRemap& remap,
                    QueryRecord* out, const std::string& path) {
  uint8_t bits = r->GetU8();
  const bool parsed = (bits & kBitParsed) != 0;

  out->text = r->GetString();
  out->user = r->GetString();
  out->timestamp = r->GetZigzag();
  out->session_id = r->GetZigzag();
  out->flags = static_cast<uint32_t>(r->GetVarint());
  out->quality = r->GetDouble();

  out->stats.execution_micros = r->GetZigzag();
  out->stats.result_rows = r->GetVarint();
  out->stats.rows_scanned = r->GetVarint();
  out->stats.succeeded = r->GetU8() != 0;
  out->stats.error = r->GetString();
  out->stats.plan = r->GetString();

  uint64_t annotation_count = r->GetVarint();
  if (r->failed() || annotation_count > r->remaining()) {
    return CorruptSnapshot(path, "annotation count");
  }
  out->annotations.reserve(annotation_count);
  for (uint64_t i = 0; i < annotation_count; ++i) {
    Annotation a;
    a.author = r->GetString();
    a.timestamp = r->GetZigzag();
    a.text = r->GetString();
    a.fragment = r->GetString();
    out->annotations.push_back(std::move(a));
  }

  if (parsed) {
    out->text_parses = true;  // ast stays null; Ast() re-parses lazily
    out->canonical_text = r->GetString();
    out->skeleton = r->GetString();
    out->fingerprint = r->GetFixed64();
    out->skeleton_fingerprint = r->GetFixed64();
    sql::QueryComponents& c = out->components;
    c.tables = GetStringList(r);
    uint64_t attr_count = r->GetVarint();
    if (r->failed() || attr_count > r->remaining()) {
      return CorruptSnapshot(path, "attribute count");
    }
    c.attributes.reserve(attr_count);
    for (uint64_t i = 0; i < attr_count; ++i) {
      std::string rel = r->GetString();
      std::string attr = r->GetString();
      c.attributes.emplace_back(std::move(rel), std::move(attr));
    }
    c.projections = GetStringList(r);
    uint64_t pred_count = r->GetVarint();
    if (r->failed() || pred_count > r->remaining()) {
      return CorruptSnapshot(path, "predicate count");
    }
    c.predicates.reserve(pred_count);
    for (uint64_t i = 0; i < pred_count; ++i) {
      sql::PredicateFeature p;
      p.relation = r->GetString();
      p.attribute = r->GetString();
      p.op = r->GetString();
      p.constant = r->GetString();
      p.is_join = r->GetU8() != 0;
      p.rhs_relation = r->GetString();
      p.rhs_attribute = r->GetString();
      c.predicates.push_back(std::move(p));
    }
    c.group_by = GetStringList(r);
    c.order_by = GetStringList(r);
    c.aggregates = GetStringList(r);
    uint8_t cbits = r->GetU8();
    c.has_subquery = (cbits & (1u << 0)) != 0;
    c.has_distinct = (cbits & (1u << 1)) != 0;
    c.select_star = (cbits & (1u << 2)) != 0;
    c.num_joins = static_cast<int>(r->GetZigzag());
    c.num_tables = static_cast<int>(r->GetZigzag());
    c.max_nesting_depth = static_cast<int>(r->GetZigzag());
    if ((cbits & (1u << 3)) != 0) c.limit = r->GetZigzag();
  }

  if ((bits & kBitSigValid) != 0) {
    SimilaritySignature& sig = out->signature;
    sig.tables = GetSymbolRun(r);
    sig.predicate_skeletons = GetSymbolRun(r);
    sig.attributes = GetSymbolRun(r);
    sig.projections = GetSymbolRun(r);
    sig.text_tokens = GetSymbolRun(r);
    sig.output_rows = GetDeltaU64s(r);
    sig.output_empty_computed = (bits & kBitOutputEmptyComputed) != 0;
    sig.valid = true;
    bool symbols_ok = true;
    remap.Apply(&sig.tables, &symbols_ok);
    remap.Apply(&sig.predicate_skeletons, &symbols_ok);
    remap.Apply(&sig.attributes, &symbols_ok);
    remap.Apply(&sig.projections, &symbols_ok);
    remap.Apply(&sig.text_tokens, &symbols_ok);
    if (!symbols_ok) return CorruptSnapshot(path, "dangling symbol");
  }

  if ((bits & kBitSketchValid) != 0) {
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
    r->GetRaw(out->sketch.mins.data(), sizeof(out->sketch.mins));
#else
    for (uint64_t& slot : out->sketch.mins) slot = r->GetFixed64();
#endif
    if (remap.identity) {
      out->sketch.valid = true;
    } else {
      // Sketch slots hash Symbol values, which just changed under the
      // remap; rebuild from the remapped signature (no string work
      // beyond the keyword-exclusion name lookups).
      out->sketch = ComputeMinHashSketch(out->signature);
    }
  }

  if (r->failed()) return CorruptSnapshot(path, "record payload");
  return Status::Ok();
}

// The encoder reads only records(), size() and acl() from its source —
// exactly the surface QueryStore and ReadViewState share — so one body
// serves both: the live single-threaded save and the view-backed save
// that can run concurrently with the writer.
template <typename Source>
Status EncodeSnapshotV2Impl(const Source& store, uint64_t wal_sequence,
                            std::string* out) {
  std::string file(kSnapshotV2Magic);
  {
    BinaryWriter version;
    version.PutFixed32(kFormatVersion);
    file.append(version.data());
  }

  // Interner section: the full table prefix covering every symbol the
  // signature vectors below are encoded in (see ReferencedSymbolLimit
  // for why the gaps are included).
  {
    Symbol limit = ReferencedSymbolLimit(store);
    std::vector<std::string> table = GlobalInterner().ExportTable();
    if (limit > table.size()) {
      // Transient (hash-derived) ids must never reach a stored
      // signature; Append re-interns them.
      return Status::Internal("snapshot references unknown symbol below " +
                              std::to_string(limit));
    }
    BinaryWriter w;
    w.PutVarint(limit);
    for (Symbol s = 0; s < limit; ++s) {
      w.PutVarint(s);
      w.PutString(table[s]);
    }
    AppendSection(&file, kSectionInterner, w.data());
  }

  {
    BinaryWriter w;
    const auto& memberships = store.acl().memberships();
    w.PutVarint(memberships.size());
    for (const auto& [user, groups] : memberships) {
      w.PutString(user);
      w.PutVarint(groups.size());
      for (const std::string& g : groups) w.PutString(g);
    }
    // Only non-default visibility is registered in the ACL map; emit
    // one entry per record whose effective visibility differs from the
    // kGroup default.
    std::vector<std::pair<QueryId, Visibility>> vis;
    for (const QueryRecord& r : store.records()) {
      Visibility v = store.acl().GetVisibility(r.id);
      if (v != Visibility::kGroup) vis.emplace_back(r.id, v);
    }
    w.PutVarint(vis.size());
    for (const auto& [id, v] : vis) {
      w.PutVarint(static_cast<uint64_t>(id));
      w.PutU8(static_cast<uint8_t>(v));
    }
    AppendSection(&file, kSectionAcl, w.data());
  }

  {
    BinaryWriter w;
    w.PutVarint(store.size());
    for (const QueryRecord& r : store.records()) EncodeRecord(&w, r);
    AppendSection(&file, kSectionRecords, w.data());
  }

  {
    BinaryWriter w;
    w.PutFixed64(wal_sequence);
    AppendSection(&file, kSectionDurability, w.data());
  }

  AppendSection(&file, kSectionEnd, std::string());
  *out = std::move(file);
  return Status::Ok();
}

}  // namespace

Status SaveSnapshotV2(const QueryStore& store, const std::string& path,
                      uint64_t wal_sequence, Env* env) {
  std::string file;
  CQMS_RETURN_IF_ERROR(EncodeSnapshotV2(store, wal_sequence, &file));
  return WriteFileAtomic(path, file, env);
}

Status SaveSnapshotV2(const ReadViewState& view, const std::string& path,
                      uint64_t wal_sequence, Env* env) {
  std::string file;
  CQMS_RETURN_IF_ERROR(EncodeSnapshotV2(view, wal_sequence, &file));
  return WriteFileAtomic(path, file, env);
}

Status EncodeSnapshotV2(const QueryStore& store, uint64_t wal_sequence,
                        std::string* out) {
  return EncodeSnapshotV2Impl(store, wal_sequence, out);
}

Status EncodeSnapshotV2(const ReadViewState& view, uint64_t wal_sequence,
                        std::string* out) {
  return EncodeSnapshotV2Impl(view, wal_sequence, out);
}

Status VerifySnapshotV2(const std::string& path, Env* env) {
  std::string file;
  CQMS_RETURN_IF_ERROR(ReadFileToString(path, &file, env));
  if (file.size() < kSnapshotV2Magic.size() + 4 ||
      file.compare(0, kSnapshotV2Magic.size(), kSnapshotV2Magic) != 0) {
    return CorruptSnapshot(path, "bad magic");
  }
  BinaryReader header(
      std::string_view(file).substr(kSnapshotV2Magic.size(), 4));
  uint32_t version = header.GetFixed32();
  if (version != kFormatVersion) {
    return Status::IoError("unsupported snapshot version " +
                           std::to_string(version) + ": " + path);
  }
  size_t pos = kSnapshotV2Magic.size() + 4;
  std::string_view view(file);
  bool saw_records = false;
  while (true) {
    if (file.size() - pos < 1 + 8) return CorruptSnapshot(path, "truncated");
    uint8_t section = static_cast<uint8_t>(file[pos]);
    BinaryReader frame(view.substr(pos + 1, 8));
    uint64_t len = frame.GetFixed64();
    pos += 1 + 8;
    if (len > file.size() - pos || file.size() - pos - len < 4) {
      return CorruptSnapshot(path, "truncated section");
    }
    std::string_view payload = view.substr(pos, len);
    pos += len;
    BinaryReader crc_reader(view.substr(pos, 4));
    uint32_t stored_crc = crc_reader.GetFixed32();
    pos += 4;
    if (Crc32(payload) != stored_crc) {
      return CorruptSnapshot(path, "section crc mismatch");
    }
    if (section == kSectionRecords) saw_records = true;
    if (section == kSectionEnd) {
      if (!saw_records) return CorruptSnapshot(path, "missing records");
      return Status::Ok();
    }
  }
}

Status LoadSnapshotV2FromString(QueryStore* store, std::string_view data,
                                const std::string& label,
                                uint64_t* wal_sequence) {
  if (wal_sequence != nullptr) *wal_sequence = 0;
  if (store->size() != 0) {
    return Status::InvalidArgument("LoadSnapshotV2 requires an empty store");
  }
  if (data.size() < kSnapshotV2Magic.size() + 4 ||
      data.compare(0, kSnapshotV2Magic.size(), kSnapshotV2Magic) != 0) {
    return CorruptSnapshot(label, "bad magic");
  }
  BinaryReader header(data.substr(kSnapshotV2Magic.size(), 4));
  uint32_t version = header.GetFixed32();
  if (version != kFormatVersion) {
    return Status::IoError("unsupported snapshot version " +
                           std::to_string(version) + ": " + label);
  }

  SymbolRemap remap;
  bool saw_interner = false;
  bool saw_records = false;
  size_t pos = kSnapshotV2Magic.size() + 4;
  while (true) {
    if (data.size() - pos < 1 + 8) return CorruptSnapshot(label, "truncated");
    uint8_t section = static_cast<uint8_t>(data[pos]);
    BinaryReader frame(data.substr(pos + 1, 8));
    uint64_t len = frame.GetFixed64();
    pos += 1 + 8;
    if (len > data.size() - pos || data.size() - pos - len < 4) {
      return CorruptSnapshot(label, "truncated section");
    }
    std::string_view payload = data.substr(pos, len);
    pos += len;
    BinaryReader crc_reader(data.substr(pos, 4));
    uint32_t stored_crc = crc_reader.GetFixed32();
    pos += 4;
    if (Crc32(payload) != stored_crc) {
      return CorruptSnapshot(label, "section crc mismatch");
    }

    BinaryReader r(payload);
    switch (section) {
      case kSectionInterner:
        CQMS_RETURN_IF_ERROR(DecodeInterner(&r, &remap, label));
        saw_interner = true;
        break;
      case kSectionAcl:
        CQMS_RETURN_IF_ERROR(DecodeAcl(&r, store, label));
        break;
      case kSectionRecords: {
        if (!saw_interner) {
          return CorruptSnapshot(label, "records before interner table");
        }
        uint64_t count = r.GetVarint();
        if (r.failed()) return CorruptSnapshot(label, "record count");
        store->ReserveForRestore(count, remap.map.size());
        for (uint64_t i = 0; i < count; ++i) {
          QueryRecord record;
          CQMS_RETURN_IF_ERROR(DecodeRecord(&r, remap, &record, label));
          store->RestoreAppend(std::move(record));
        }
        if (!r.AtEnd()) return CorruptSnapshot(label, "records payload");
        saw_records = true;
        break;
      }
      case kSectionDurability:
        if (wal_sequence != nullptr) *wal_sequence = r.GetFixed64();
        if (r.failed()) return CorruptSnapshot(label, "durability payload");
        break;
      case kSectionEnd:
        if (!saw_records) return CorruptSnapshot(label, "missing records");
        return Status::Ok();
      default:
        // Unknown section from a newer minor revision: CRC verified,
        // skip.
        break;
    }
  }
}

Status LoadSnapshotV2(QueryStore* store, const std::string& path,
                      uint64_t* wal_sequence, Env* env) {
  if (wal_sequence != nullptr) *wal_sequence = 0;
  std::string file;
  CQMS_RETURN_IF_ERROR(ReadFileToString(path, &file, env));
  return LoadSnapshotV2FromString(store, file, path, wal_sequence);
}

}  // namespace cqms::storage
