#include "storage/wal.h"

#include <algorithm>

#include "common/binary_codec.h"
#include "obs/metrics.h"
#include "storage/persistence.h"
#include "storage/record_builder.h"

namespace cqms::storage {

namespace {

constexpr std::string_view kWalMagic = "CQMSWAL1";
constexpr uint32_t kWalVersion = 1;
constexpr size_t kHeaderSize = 8 + 4;
constexpr size_t kFrameOverhead = 4 + 4;  // length + CRC

std::string WalHeader() {
  std::string header(kWalMagic);
  BinaryWriter w;
  w.PutFixed32(kWalVersion);
  header.append(w.data());
  return header;
}

Status CorruptWal(const std::string& path, const std::string& what) {
  return Status::Corruption("corrupt WAL (" + what + "): " + path);
}

}  // namespace

Status ApplyWalRecord(BinaryReader* r, QueryStore* store,
                      const std::string& path) {
  uint8_t raw_op = r->GetU8();
  WalOp op = static_cast<WalOp>(raw_op);
  switch (op) {
    case WalOp::kAppend: {
      bool parsed = r->GetU8() != 0;
      std::string text = r->GetString();
      std::string user = r->GetString();
      Micros ts = r->GetZigzag();
      SessionId session = r->GetZigzag();
      uint32_t flags = static_cast<uint32_t>(r->GetVarint());
      double quality = r->GetDouble();
      RuntimeStats stats;
      stats.execution_micros = r->GetZigzag();
      stats.result_rows = r->GetVarint();
      stats.rows_scanned = r->GetVarint();
      stats.succeeded = r->GetU8() != 0;
      stats.error = r->GetString();
      stats.plan = r->GetString();
      std::vector<uint64_t> output_rows = GetDeltaU64s(r);
      bool output_empty_computed = r->GetU8() != 0;
      QueryId expected_id = static_cast<QueryId>(r->GetVarint());
      if (r->failed()) return CorruptWal(path, "append payload");
      QueryRecord record;
      QueryId id;
      if (parsed) {
        // Replaying the tail re-tokenizes — bounded by the checkpoint
        // interval, unlike the snapshot body.
        record = BuildRecordFromText(std::move(text), std::move(user), ts);
        record.session_id = session;
        record.flags = flags;
        record.quality = quality;
        record.stats = std::move(stats);
        // The output summary itself is not logged (refreshable cache),
        // but its signature contribution — the hashes output-similarity
        // ranking reads — is, so ranking stays crash-consistent for
        // WAL-tail records too. RestoreAppend trusts the patched
        // signature instead of refolding the (absent) summary the way
        // Append would.
        record.signature.output_rows = std::move(output_rows);
        record.signature.output_empty_computed = output_empty_computed;
        id = store->RestoreAppend(std::move(record));
      } else {
        // Original was logged without parsing (text-only profiling level
        // or unparsable text that BuildRecordFromText degraded); Append
        // computes the signature exactly as it did originally. Such
        // records never carry an output summary.
        record.text = std::move(text);
        record.user = std::move(user);
        record.timestamp = ts;
        record.session_id = session;
        record.flags = flags;
        record.quality = quality;
        record.stats = std::move(stats);
        id = store->Append(std::move(record));
      }
      if (id != expected_id) {
        return CorruptWal(path, "append id mismatch");
      }
      return Status::Ok();
    }
    case WalOp::kRewrite: {
      QueryId id = static_cast<QueryId>(r->GetVarint());
      std::string text = r->GetString();
      std::vector<uint64_t> output_rows = GetDeltaU64s(r);
      bool output_empty_computed = r->GetU8() != 0;
      if (r->failed()) return CorruptWal(path, "rewrite payload");
      CQMS_RETURN_IF_ERROR(store->RewriteQueryText(id, text));
      // The rewrite preserved the (unpersisted) summary; restore its
      // hash contribution so output-similarity ranking stays
      // crash-consistent across a rewritten tail record.
      return store->RestoreOutputSignature(id, std::move(output_rows),
                                           output_empty_computed);
    }
    case WalOp::kAnnotate: {
      QueryId id = static_cast<QueryId>(r->GetVarint());
      Annotation a;
      a.author = r->GetString();
      a.timestamp = r->GetZigzag();
      a.text = r->GetString();
      a.fragment = r->GetString();
      if (r->failed()) return CorruptWal(path, "annotate payload");
      return store->Annotate(id, std::move(a));
    }
    case WalOp::kFlagSet:
    case WalOp::kFlagClear: {
      QueryId id = static_cast<QueryId>(r->GetVarint());
      QueryFlags flag = static_cast<QueryFlags>(r->GetVarint());
      if (r->failed()) return CorruptWal(path, "flag payload");
      return op == WalOp::kFlagSet ? store->AddFlag(id, flag)
                                   : store->ClearFlag(id, flag);
    }
    case WalOp::kSetSession: {
      QueryId id = static_cast<QueryId>(r->GetVarint());
      SessionId session = r->GetZigzag();
      if (r->failed()) return CorruptWal(path, "session payload");
      return store->SetSession(id, session);
    }
    case WalOp::kSetQuality: {
      QueryId id = static_cast<QueryId>(r->GetVarint());
      double quality = r->GetDouble();
      if (r->failed()) return CorruptWal(path, "quality payload");
      return store->SetQuality(id, quality);
    }
    case WalOp::kDelete: {
      QueryId id = static_cast<QueryId>(r->GetVarint());
      if (r->failed()) return CorruptWal(path, "delete payload");
      // The owner check already passed when the op was logged.
      return store->Delete(id, "", /*is_admin=*/true);
    }
    case WalOp::kAddUser: {
      std::string user = r->GetString();
      uint64_t n = r->GetVarint();
      if (r->failed() || n > r->remaining()) {
        return CorruptWal(path, "adduser payload");
      }
      std::vector<std::string> groups;
      groups.reserve(n);
      for (uint64_t i = 0; i < n; ++i) groups.push_back(r->GetString());
      if (r->failed()) return CorruptWal(path, "adduser payload");
      store->acl().AddUser(user, groups);
      return Status::Ok();
    }
    case WalOp::kSetVisibility: {
      QueryId id = static_cast<QueryId>(r->GetVarint());
      uint8_t vis = r->GetU8();
      if (r->failed() || vis > static_cast<uint8_t>(Visibility::kPublic)) {
        return CorruptWal(path, "visibility payload");
      }
      return store->acl().SetVisibility(id, "", "",
                                        static_cast<Visibility>(vis));
    }
  }
  // A tag this build does not know: either corruption that survived the
  // CRC (vanishingly unlikely) or a log written by a newer version.
  // Either way the frame cannot be decoded — refuse with a typed status
  // instead of guessing at its payload.
  return CorruptWal(path,
                    "unknown WAL record type " + std::to_string(raw_op));
}

namespace wal {

std::string EncodeAppend(const QueryRecord& record) {
  BinaryWriter w;
  w.PutU8(static_cast<uint8_t>(WalOp::kAppend));
  w.PutU8(record.parse_failed() ? 0 : 1);
  w.PutString(record.text);
  w.PutString(record.user);
  w.PutZigzag(record.timestamp);
  w.PutZigzag(record.session_id);
  w.PutVarint(record.flags);
  w.PutDouble(record.quality);
  w.PutZigzag(record.stats.execution_micros);
  w.PutVarint(record.stats.result_rows);
  w.PutVarint(record.stats.rows_scanned);
  w.PutU8(record.stats.succeeded ? 1 : 0);
  w.PutString(record.stats.error);
  w.PutString(record.stats.plan);
  PutDeltaU64s(&w, record.signature.output_rows);
  w.PutU8(record.signature.output_empty_computed ? 1 : 0);
  w.PutVarint(static_cast<uint64_t>(record.id));
  return w.Take();
}

std::string EncodeRewrite(QueryId id, std::string_view new_text,
                          const SimilaritySignature& signature) {
  BinaryWriter w;
  w.PutU8(static_cast<uint8_t>(WalOp::kRewrite));
  w.PutVarint(static_cast<uint64_t>(id));
  w.PutString(new_text);
  PutDeltaU64s(&w, signature.output_rows);
  w.PutU8(signature.output_empty_computed ? 1 : 0);
  return w.Take();
}

std::string EncodeAnnotate(QueryId id, const Annotation& annotation) {
  BinaryWriter w;
  w.PutU8(static_cast<uint8_t>(WalOp::kAnnotate));
  w.PutVarint(static_cast<uint64_t>(id));
  w.PutString(annotation.author);
  w.PutZigzag(annotation.timestamp);
  w.PutString(annotation.text);
  w.PutString(annotation.fragment);
  return w.Take();
}

std::string EncodeFlagChange(QueryId id, QueryFlags flag, bool set) {
  BinaryWriter w;
  w.PutU8(static_cast<uint8_t>(set ? WalOp::kFlagSet : WalOp::kFlagClear));
  w.PutVarint(static_cast<uint64_t>(id));
  w.PutVarint(flag);
  return w.Take();
}

std::string EncodeSetSession(QueryId id, SessionId session) {
  BinaryWriter w;
  w.PutU8(static_cast<uint8_t>(WalOp::kSetSession));
  w.PutVarint(static_cast<uint64_t>(id));
  w.PutZigzag(session);
  return w.Take();
}

std::string EncodeSetQuality(QueryId id, double quality) {
  BinaryWriter w;
  w.PutU8(static_cast<uint8_t>(WalOp::kSetQuality));
  w.PutVarint(static_cast<uint64_t>(id));
  w.PutDouble(quality);
  return w.Take();
}

std::string EncodeDelete(QueryId id) {
  BinaryWriter w;
  w.PutU8(static_cast<uint8_t>(WalOp::kDelete));
  w.PutVarint(static_cast<uint64_t>(id));
  return w.Take();
}

std::string EncodeAddUser(const std::string& user,
                          const std::vector<std::string>& groups) {
  BinaryWriter w;
  w.PutU8(static_cast<uint8_t>(WalOp::kAddUser));
  w.PutString(user);
  w.PutVarint(groups.size());
  for (const std::string& g : groups) w.PutString(g);
  return w.Take();
}

std::string EncodeSetVisibility(QueryId id, Visibility visibility) {
  BinaryWriter w;
  w.PutU8(static_cast<uint8_t>(WalOp::kSetVisibility));
  w.PutVarint(static_cast<uint64_t>(id));
  w.PutU8(static_cast<uint8_t>(visibility));
  return w.Take();
}

}  // namespace wal

Status WalWriter::Open(const std::string& path, bool fsync_each_record,
                       Env* env) {
  Close();
  path_ = path;
  env_ = env != nullptr ? env : Env::Default();
  fsync_each_record_ = fsync_each_record;
  failed_ = false;
  Status s = env_->NewWritableFile(path, Env::WriteMode::kAppend, &file_);
  if (!s.ok()) {
    return Status(s.code(),
                  "cannot open WAL for appending: " + path + " (" +
                      s.message() + ")");
  }
  s = env_->GetFileSize(path, &bytes_);
  if (!s.ok()) {
    Close();
    return Status(s.code(), "cannot size WAL: " + path);
  }
  appended_records_ = 0;
  if (bytes_ == 0) {
    std::string header = WalHeader();
    s = file_->Append(header);
    if (s.ok()) s = file_->Flush();
    if (s.ok() && fsync_each_record_) {
      // Under power-loss guarantees the header — and the directory
      // entry of a freshly created log — must be durable before any
      // append is acknowledged: fsync(2) of the file alone does not
      // persist its name, and a log whose entry vanishes takes every
      // acked record with it.
      s = file_->Sync();
      if (s.ok()) s = env_->SyncDir(DirnameOf(path_));
    }
    if (!s.ok()) {
      Close();
      return Status(s.code(), "cannot write WAL header: " + path + " (" +
                                  s.message() + ")");
    }
    bytes_ = header.size();
  }
  return Status::Ok();
}

Status WalWriter::OpenFresh() {
  Status s = env_->NewWritableFile(path_, Env::WriteMode::kTruncate, &file_);
  if (!s.ok()) {
    // Leave the writer retryable: the next Reset/Rotate tries again.
    failed_ = true;
    return Status(s.code(), "cannot truncate WAL: " + path_);
  }
  std::string header = WalHeader();
  s = file_->Append(header);
  if (s.ok()) s = file_->Flush();
  if (s.ok() && fsync_each_record_) {
    s = file_->Sync();
    if (s.ok()) s = env_->SyncDir(DirnameOf(path_));
  }
  if (!s.ok()) {
    failed_ = true;
    return Status(s.code(),
                  "cannot write WAL header: " + path_ + " (" + s.message() +
                      ")");
  }
  bytes_ = header.size();
  appended_records_ = 0;
  failed_ = false;
  return Status::Ok();
}

Status WalWriter::Reset() {
  if (path_.empty()) return Status::Internal("WAL writer never opened");
  Close();
  return OpenFresh();
}

Status WalWriter::Rotate(const std::string& retired_path) {
  if (path_.empty()) return Status::Internal("WAL writer never opened");
  Close();
  // A retried Rotate after a failed fresh-log open finds the rename
  // already done; skip it rather than fail on the missing source.
  if (env_->FileExists(path_)) {
    Status s = env_->RenameFile(path_, retired_path);
    if (!s.ok()) {
      failed_ = true;
      return s;
    }
  }
  return OpenFresh();
}

void WalWriter::Close() {
  if (file_ != nullptr) {
    (void)file_->Close();
    file_.reset();
  }
}

Status WalWriter::Append(std::string_view payload) {
  if (file_ == nullptr) return Status::Internal("WAL writer not open");
  if (failed_) {
    return Status::IoError("WAL writer failed; awaiting checkpoint reset: " +
                           path_);
  }
  BinaryWriter frame;
  frame.PutFixed32(static_cast<uint32_t>(payload.size()));
  frame.PutFixed32(Crc32(payload));
  frame.PutBytes(payload.data(), payload.size());
  const std::string& bytes = frame.data();
  Status s = file_->Append(bytes);
  if (s.ok()) s = file_->Flush();
  if (!s.ok()) {
    // A partial frame may have reached the file; roll back to the last
    // good frame boundary so the on-disk prefix stays cleanly framed.
    // (If the rollback fails too, the torn frame stays and replay will
    // stop at it — the same consistent prefix.) Either way the writer
    // latches: the mutation applied in memory but was never logged, so
    // any *later* frame would be inconsistent with the store it
    // replays into (an append frame's expected id, a delete a lost
    // delete should have preceded). Only a checkpoint — which captures
    // the in-memory state wholesale — may reopen the log.
    (void)file_->Truncate(bytes_);
    failed_ = true;
    return Status(s.code(),
                  "WAL append failed: " + path_ + " (" + s.message() + ")");
  }
  if (fsync_each_record_) {
    s = file_->Sync();
    if (!s.ok()) {
      // The caller was promised power-loss durability; an unsynced
      // frame breaks it, and on Linux the error may be consumed by
      // this very call (later fsyncs would lie). Same discipline as a
      // failed write: latch until a checkpoint repairs.
      failed_ = true;
      return Status(s.code(),
                    "WAL fsync failed: " + path_ + " (" + s.message() + ")");
    }
    static obs::Counter* fsyncs = obs::MetricsRegistry::Global().GetCounter(
        "cqms_wal_fsyncs_total");
    fsyncs->Increment();
  }
  bytes_ += bytes.size();
  ++appended_records_;
  static obs::Counter* wal_bytes =
      obs::MetricsRegistry::Global().GetCounter("cqms_wal_bytes_total");
  static obs::Counter* wal_appends =
      obs::MetricsRegistry::Global().GetCounter("cqms_wal_appends_total");
  wal_bytes->Add(bytes.size());
  wal_appends->Increment();
  return Status::Ok();
}

Status ReplayWal(const std::string& path, QueryStore* store,
                 WalReplayStats* stats, uint64_t min_sequence, Env* env) {
  if (env == nullptr) env = Env::Default();
  *stats = WalReplayStats{};
  if (!env->FileExists(path)) {
    return Status::Ok();  // no log yet: fresh deployment
  }
  std::string file;
  CQMS_RETURN_IF_ERROR(ReadFileToString(path, &file, env));
  if (file.empty()) return Status::Ok();
  if (file.size() < kHeaderSize) {
    // A crash during the very first header write leaves a short prefix
    // of the header: nothing was ever committed, so recover to empty
    // rather than refusing. Anything else this short is not our file.
    if (WalHeader().compare(0, file.size(), file) == 0) {
      stats->torn_bytes = file.size();
      return Status::Ok();
    }
    return CorruptWal(path, "bad header");
  }
  if (file.compare(0, kWalMagic.size(), kWalMagic) != 0) {
    return CorruptWal(path, "bad header");
  }
  {
    BinaryReader header(std::string_view(file).substr(kWalMagic.size(), 4));
    uint32_t version = header.GetFixed32();
    if (version != kWalVersion) {
      return Status::IoError("unsupported WAL version " +
                             std::to_string(version) + ": " + path);
    }
  }

  std::string_view view(file);
  size_t pos = kHeaderSize;
  stats->bytes_valid = pos;
  while (pos < file.size()) {
    if (file.size() - pos < kFrameOverhead) break;  // torn frame header
    BinaryReader frame(view.substr(pos, kFrameOverhead));
    uint32_t len = frame.GetFixed32();
    uint32_t stored_crc = frame.GetFixed32();
    if (file.size() - pos - kFrameOverhead < len) break;  // torn payload
    std::string_view payload = view.substr(pos + kFrameOverhead, len);
    if (Crc32(payload) != stored_crc) break;  // torn / corrupted frame
    BinaryReader r(payload);
    uint64_t sequence = r.GetVarint();
    if (r.failed()) return CorruptWal(path, "missing sequence");
    stats->max_sequence = std::max(stats->max_sequence, sequence);
    if (stats->min_sequence == 0 || sequence < stats->min_sequence) {
      stats->min_sequence = sequence;
    }
    if (sequence <= min_sequence) {
      // The snapshot already contains this mutation: a crash landed
      // between the snapshot write and the WAL truncation. CRC already
      // vouched for the frame; don't re-apply it.
      ++stats->records_skipped;
    } else {
      CQMS_RETURN_IF_ERROR(ApplyWalRecord(&r, store, path));
      if (!r.AtEnd()) return CorruptWal(path, "trailing payload bytes");
      ++stats->records_applied;
    }
    pos += kFrameOverhead + len;
    stats->bytes_valid = pos;
  }
  stats->torn_bytes = file.size() - stats->bytes_valid;
  return Status::Ok();
}

Status ScanWalFrames(
    const std::string& path, Env* env,
    const std::function<bool(uint64_t sequence, std::string_view frame)>& fn) {
  if (env == nullptr) env = Env::Default();
  if (!env->FileExists(path)) return Status::Ok();
  std::string file;
  CQMS_RETURN_IF_ERROR(ReadFileToString(path, &file, env));
  if (file.size() < kHeaderSize) return Status::Ok();  // torn header
  if (file.compare(0, kWalMagic.size(), kWalMagic) != 0) {
    return CorruptWal(path, "bad header");
  }
  std::string_view view(file);
  size_t pos = kHeaderSize;
  while (pos < file.size()) {
    if (file.size() - pos < kFrameOverhead) break;
    BinaryReader header(view.substr(pos, kFrameOverhead));
    uint32_t len = header.GetFixed32();
    uint32_t stored_crc = header.GetFixed32();
    if (file.size() - pos - kFrameOverhead < len) break;
    std::string_view payload = view.substr(pos + kFrameOverhead, len);
    if (Crc32(payload) != stored_crc) break;
    BinaryReader r(payload);
    uint64_t sequence = r.GetVarint();
    if (r.failed()) return CorruptWal(path, "missing sequence");
    if (!fn(sequence, payload)) return Status::Ok();
    pos += kFrameOverhead + len;
  }
  return Status::Ok();
}

}  // namespace cqms::storage
